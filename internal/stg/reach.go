package stg

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sg"
)

// DefaultStateLimit bounds reachability exploration to guard against
// state explosion in malformed nets.
const DefaultStateLimit = 1 << 20

// marking is a bitset over places.
type marking []uint64

func newMarking(places int) marking { return make(marking, (places+63)/64) }

func (m marking) has(p int) bool { return m[p/64]>>uint(p%64)&1 == 1 }
func (m marking) set(p int)      { m[p/64] |= 1 << uint(p%64) }
func (m marking) clear(p int)    { m[p/64] &^= 1 << uint(p%64) }
func (m marking) clone() marking { c := make(marking, len(m)); copy(c, m); return c }

// sgEdge is one explored firing: marking from reaches marking to by
// firing transition trans.
type sgEdge struct{ from, trans, to int }

// fireMasks holds the word-level firing machinery of one net: per
// transition the pre-set and post-set as place bitmasks, so Enabled is a
// word-wise AND comparison and firing is AND-NOT/OR — no per-place loops
// and no allocation on the hot path.
type fireMasks struct {
	words     int      // words per marking
	pre, post []uint64 // t*words .. (t+1)*words
	hasPre    []bool   // transition has a non-empty pre-set
	dupPost   []bool   // a place repeats in PostT[t]: firing always violates 1-safety
}

func newFireMasks(n *STG) *fireMasks {
	words := (n.NumPlaces() + 63) / 64
	nt := len(n.Trans)
	fm := &fireMasks{
		words:   words,
		pre:     make([]uint64, nt*words),
		post:    make([]uint64, nt*words),
		hasPre:  make([]bool, nt),
		dupPost: make([]bool, nt),
	}
	for t := 0; t < nt; t++ {
		pre := fm.pre[t*words : (t+1)*words]
		post := fm.post[t*words : (t+1)*words]
		for _, p := range n.PreT[t] {
			pre[p/64] |= 1 << uint(p%64)
		}
		fm.hasPre[t] = len(n.PreT[t]) > 0
		for _, p := range n.PostT[t] {
			if post[p/64]>>uint(p%64)&1 == 1 {
				fm.dupPost[t] = true
			}
			post[p/64] |= 1 << uint(p%64)
		}
	}
	return fm
}

// enabled reports whether transition t is enabled under m: the pre-set
// mask is fully contained in the marking. Source transitions (empty
// pre-set) are rejected — they would be unsafe.
func (fm *fireMasks) enabled(m []uint64, t int) bool {
	if !fm.hasPre[t] {
		return false
	}
	pre := fm.pre[t*fm.words : (t+1)*fm.words]
	for w, pw := range pre {
		if m[w]&pw != pw {
			return false
		}
	}
	return true
}

// fire computes the marking after firing t into dst (a caller-owned
// scratch buffer — nothing is allocated, and a failed fire leaves no
// garbage behind). A post place that is still marked after the pre-set
// is consumed violates 1-safety; the rare error path replays the firing
// place by place to name the same doubly-marked place the reference
// implementation reports.
func (fm *fireMasks) fire(n *STG, m, dst []uint64, t int) error {
	if fm.dupPost[t] {
		return n.fireError(m, t)
	}
	pre := fm.pre[t*fm.words : (t+1)*fm.words]
	post := fm.post[t*fm.words : (t+1)*fm.words]
	for w := range dst {
		rem := m[w] &^ pre[w]
		if rem&post[w] != 0 {
			return n.fireError(m, t)
		}
		dst[w] = rem | post[w]
	}
	return nil
}

// fireError replays the reference clear-then-set firing order to report
// the first doubly-marked place, matching the historical error text.
func (n *STG) fireError(m marking, t int) error {
	out := m.clone()
	for _, p := range n.PreT[t] {
		out.clear(p)
	}
	for _, p := range n.PostT[t] {
		if out.has(p) {
			return fmt.Errorf("stg: net not 1-safe: place %d doubly marked firing %s", p, n.TransLabel(t))
		}
		out.set(p)
	}
	return fmt.Errorf("stg: net not 1-safe firing %s", n.TransLabel(t))
}

// hashWords mixes a marking's words into a table hash (splitmix-style
// finalizer per word; no byte-string materialization).
func hashWords(ws []uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range ws {
		h ^= w
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		h *= 0xc4ceb9fe1a85ec53
	}
	return h
}

// markTable is an open-addressing hash set of markings. The markings
// themselves live in a grow-only arena (one flat []uint64), so insertion
// costs one append of words and the table stores only int32 ids. The
// probe/resize tallies accumulate only when stats is set (an observer
// was enabled) and are published once per build, so disabled builds
// keep the uninstrumented loop.
type markTable struct {
	words   int
	arena   []uint64
	slots   []int32 // power-of-two probe table over arena ids, -1 = empty
	n       int
	stats   bool
	probes  int64 // slot inspections across all lookups
	resizes int64 // probe-table doublings
}

func newMarkTable(words int) *markTable {
	tb := &markTable{words: words, slots: make([]int32, 64), stats: obs.Enabled()}
	for i := range tb.slots {
		tb.slots[i] = -1
	}
	return tb
}

// at returns the id-th marking. The slice aliases the arena and is
// invalidated by the next insertion.
func (tb *markTable) at(id int) []uint64 { return tb.arena[id*tb.words : (id+1)*tb.words] }

func (tb *markTable) equal(id int, m []uint64) bool {
	s := tb.at(id)
	for w := range m {
		if s[w] != m[w] {
			return false
		}
	}
	return true
}

func (tb *markTable) grow() {
	tb.resizes++
	old := tb.slots
	tb.slots = make([]int32, 2*len(old))
	mask := uint64(len(tb.slots) - 1)
	for i := range tb.slots {
		tb.slots[i] = -1
	}
	for _, id := range old {
		if id < 0 {
			continue
		}
		i := hashWords(tb.at(int(id))) & mask
		for tb.slots[i] >= 0 {
			i = (i + 1) & mask
		}
		tb.slots[i] = id
	}
}

// lookupOrAdd interns m, copying it into the arena when new.
func (tb *markTable) lookupOrAdd(m []uint64) (id int, added bool) {
	if (tb.n+1)*4 > len(tb.slots)*3 {
		tb.grow()
	}
	mask := uint64(len(tb.slots) - 1)
	i := hashWords(m) & mask
	probes := int64(1)
	for {
		s := tb.slots[i]
		if s < 0 {
			tb.slots[i] = int32(tb.n)
			tb.arena = append(tb.arena, m...)
			tb.n++
			id, added = tb.n-1, true
			break
		}
		if tb.equal(int(s), m) {
			id, added = int(s), false
			break
		}
		i = (i + 1) & mask
		probes++
	}
	if tb.stats {
		tb.probes += probes
	}
	return id, added
}

// Enabled reports whether transition t is enabled under m.
func (n *STG) Enabled(m marking, t int) bool {
	if len(n.PreT[t]) == 0 {
		return false // source transitions unsupported: would be unsafe
	}
	for _, p := range n.PreT[t] {
		if !m.has(p) {
			return false
		}
	}
	return true
}

// explore plays the token game over the reachable markings and returns
// the populated intern table (tb.n is the state count) and the labelled
// firing edges in discovery order. Markings are interned in an
// arena-backed hash table; firing goes through precomputed word masks
// into two reused scratch buffers, so the loop allocates only for the
// arena and the edge list. Nets with at most 64 places (all of Table 1)
// take a register-resident single-word path. unsafe reports whether the
// run aborted on a 1-safety violation (as opposed to the state limit).
//
//reprolint:hotpath
func explore(n *STG, limit int) (tb *markTable, edges []sgEdge, unsafe bool, err error) {
	fm := newFireMasks(n)
	tb = newMarkTable(fm.words)
	init := make([]uint64, fm.words)
	for p, ok := range n.InitialMarking {
		if ok {
			init[p/64] |= 1 << uint(p%64)
		}
	}
	tb.lookupOrAdd(init)

	nt := len(n.Trans)
	if fm.words == 1 {
		next := make([]uint64, 1)
		for head := 0; head < tb.n; head++ {
			cur := tb.arena[head] // single word: no aliasing concern
			for t := 0; t < nt; t++ {
				pw := fm.pre[t]
				if !fm.hasPre[t] || cur&pw != pw {
					continue
				}
				rem := cur &^ pw
				if rem&fm.post[t] != 0 || fm.dupPost[t] {
					return tb, nil, true, n.fireError(marking{cur}, t)
				}
				next[0] = rem | fm.post[t]
				to, added := tb.lookupOrAdd(next)
				if added && to >= limit {
					return tb, nil, false, limitError(limit)
				}
				edges = append(edges, sgEdge{from: head, trans: t, to: to}) //reprolint:alloc the edge list is the result; amortized growth, not per-iteration garbage
			}
		}
		return tb, edges, false, nil
	}

	cur := make([]uint64, fm.words)
	next := make([]uint64, fm.words)
	for head := 0; head < tb.n; head++ {
		copy(cur, tb.at(head)) // the arena may grow while we expand head
		for t := 0; t < nt; t++ {
			if !fm.enabled(cur, t) {
				continue
			}
			if err := fm.fire(n, cur, next, t); err != nil {
				return tb, nil, true, err
			}
			to, added := tb.lookupOrAdd(next)
			if added && to >= limit {
				return tb, nil, false, limitError(limit)
			}
			edges = append(edges, sgEdge{from: head, trans: t, to: to}) //reprolint:alloc the edge list is the result; amortized growth, not per-iteration garbage
		}
	}
	return tb, edges, false, nil
}

// ReachableMarkings replays the explicit token game and returns every
// reachable marking as a place-indexed bool vector, in discovery order —
// state i of BuildSG's graph is row i. It is the anchor tying explicit
// state ids to symbolic marking sets in the engine differential tests.
func ReachableMarkings(n *STG, limit int) ([][]bool, error) {
	tb, _, _, err := explore(n, limit)
	if err != nil {
		return nil, err
	}
	places := n.NumPlaces()
	out := make([][]bool, tb.n)
	for i := range out {
		mk := tb.at(i)
		row := make([]bool, places)
		for p := 0; p < places; p++ {
			row[p] = mk[p/64]>>uint(p%64)&1 == 1
		}
		out[i] = row
	}
	return out, nil
}

// limitError formats the state-limit abort off the exploration hot
// path; it runs at most once per build.
func limitError(limit int) error {
	return fmt.Errorf("stg: state limit %d exceeded", limit)
}

// BuildSG explores the reachable markings of the net under interleaving
// semantics, infers a consistent binary encoding of the signals, and
// returns the state graph. It fails when the net is unsafe, the encoding
// is inconsistent (the STG violates the consistent state assignment
// rules), a signal never fires, or exploration exceeds DefaultStateLimit.
func BuildSG(n *STG) (*sg.Graph, error) {
	return BuildSGLimit(n, DefaultStateLimit)
}

// BuildSGLimit is BuildSG with an explicit bound on the number of states.
func BuildSGLimit(n *STG, limit int) (*sg.Graph, error) {
	if err := checkBuildable(n); err != nil {
		return nil, err
	}
	if !obs.Enabled() {
		tb, edges, _, err := explore(n, limit)
		if err != nil {
			return nil, err
		}
		return assembleSG(n, tb.n, edges)
	}
	sp := obs.Start("reach", obs.A("spec", n.Name))
	defer sp.End()
	defer sp.AttrMemDelta(obs.MarkMem())
	esp := obs.Start("reach.explore")
	tb, edges, unsafe, err := explore(n, limit)
	esp.End()
	publishReach(tb, len(edges), unsafe)
	if err != nil {
		return nil, err
	}
	sp.SetAttr("states", tb.n)
	sp.SetAttr("edges", len(edges))
	asp := obs.Start("reach.assemble")
	g, err := assembleSG(n, tb.n, edges)
	asp.End()
	return g, err
}

// publishReach reports one exploration's tallies to the observability
// layer (a no-op without an enabled observer).
func publishReach(tb *markTable, edges int, unsafe bool) {
	o := obs.Get()
	if o == nil {
		return
	}
	m := o.Metrics
	m.Counter("stg_reach_states_total").Add(int64(tb.n))
	m.Counter("stg_reach_edges_total").Add(int64(edges))
	m.Counter("stg_reach_probes_total").Add(tb.probes)
	m.Counter("stg_reach_resizes_total").Add(tb.resizes)
	m.Counter("stg_reach_arena_bytes_total").Add(int64(len(tb.arena) * 8))
	if unsafe {
		m.Counter("stg_reach_unsafe_rejections_total").Add(1)
	}
	obs.Info("reach done", "states", tb.n, "edges", edges, "probes", tb.probes)
}

// checkBuildable rejects nets reachability cannot represent.
func checkBuildable(n *STG) error {
	if len(n.Signals) > 64 {
		return fmt.Errorf("stg: %d signals exceed the 64-signal limit", len(n.Signals))
	}
	if len(n.Trans) == 0 {
		return fmt.Errorf("stg: net has no transitions")
	}
	return nil
}

// assembleSG infers a consistent binary signal encoding over the
// explored states and builds the state graph. The propagation fixpoint
// runs over a flat value matrix and a counting-sorted edge index —
// assembly performs a constant number of allocations regardless of the
// state count, and the per-edge inner loop is branch-light direct
// indexing. Observable behaviour (error ordering included) matches the
// per-state adjacency-list original bit for bit.
func assembleSG(n *STG, nstates int, edges []sgEdge) (*sg.Graph, error) {
	// Infer signal values. val[s*nsig+sig] ∈ {unknown, zero, one}.
	const (
		unknown int8 = iota
		zero
		one
	)
	nsig := len(n.Signals)
	val := make([]int8, nstates*nsig)

	// Per-transition inference constants: the signal, its value after the
	// transition fires, and the complementary value it must hold before.
	nt := len(n.Trans)
	trSig := make([]int32, nt)
	trAfter := make([]int8, nt)
	trBefore := make([]int8, nt)
	for t, tr := range n.Trans {
		trSig[t] = int32(tr.Signal)
		if tr.Dir == Plus {
			trAfter[t], trBefore[t] = one, zero
		} else {
			trAfter[t], trBefore[t] = zero, one
		}
	}

	// Counting-sorted adjacency: eidx[start[s]:start[s+1]] lists the
	// indices of s's outgoing edges, preserving their discovery order.
	start := make([]int32, nstates+1)
	for _, e := range edges {
		start[e.from+1]++
	}
	for s := 0; s < nstates; s++ {
		start[s+1] += start[s]
	}
	eidx := make([]int32, len(edges))
	fill := make([]int32, nstates)
	copy(fill, start)
	for i, e := range edges {
		eidx[fill[e.from]] = int32(i)
		fill[e.from]++
	}

	inconsistent := func(sig int) error {
		return fmt.Errorf("stg: inconsistent state assignment for signal %s", n.Signals[sig])
	}

	// Seed: an enabled a+ pins a=0, an enabled a- pins a=1.
	for s := 0; s < nstates; s++ {
		row := val[s*nsig : s*nsig+nsig]
		for _, ei := range eidx[start[s]:start[s+1]] {
			t := edges[ei].trans
			sig := trSig[t]
			if cur := row[sig]; cur == unknown {
				row[sig] = trBefore[t]
			} else if cur != trBefore[t] {
				return nil, inconsistent(int(sig))
			}
		}
	}
	// Propagate along edges in both directions until fixpoint. The
	// before-value assignment deliberately does not raise changed — the
	// original converged that way, and the fixpoint must be identical.
	changed := true
	for changed {
		changed = false
		for s := 0; s < nstates; s++ {
			vs := val[s*nsig : s*nsig+nsig]
			for _, ei := range eidx[start[s]:start[s+1]] {
				e := edges[ei]
				tsig := int(trSig[e.trans])
				vt := val[e.to*nsig : e.to*nsig+nsig]
				for sig := 0; sig < nsig; sig++ {
					if sig == tsig {
						after := trAfter[e.trans]
						if vt[sig] == unknown {
							vt[sig] = after
							changed = true
						} else if vt[sig] != after {
							return nil, inconsistent(sig)
						}
						// Before firing a±, a has the complementary value.
						if before := trBefore[e.trans]; vs[sig] == unknown {
							vs[sig] = before
						} else if vs[sig] != before {
							return nil, inconsistent(sig)
						}
						continue
					}
					if f := vs[sig]; f != unknown {
						if vt[sig] == unknown {
							vt[sig] = f
							changed = true
						} else if vt[sig] != f {
							return nil, inconsistent(sig)
						}
					} else if b := vt[sig]; b != unknown {
						// Backward: value at destination implies value at
						// source for unrelated signals.
						vs[sig] = b
						changed = true
					}
				}
			}
		}
	}
	for sig := 0; sig < nsig; sig++ {
		if val[sig] == unknown {
			return nil, fmt.Errorf("stg: signal %s never fires; cannot infer its value", n.Signals[sig])
		}
	}

	g := &sg.Graph{
		Name:    n.Name,
		Signals: append([]string(nil), n.Signals...),
		Input:   make([]bool, nsig),
		Initial: 0,
	}
	for i, k := range n.Kinds {
		g.Input[i] = k == Input
	}
	g.States = make([]sg.State, 0, nstates)
	for s := 0; s < nstates; s++ {
		row := val[s*nsig : s*nsig+nsig]
		var code uint64
		for sig := 0; sig < nsig; sig++ {
			if row[sig] == one {
				code |= 1 << uint(sig)
			}
		}
		g.AddState(code)
	}
	// Pre-size every adjacency list out of two flat buffers: AddEdge then
	// appends in place. States without edges keep nil lists, exactly as
	// append-from-nil left them.
	indeg := make([]int32, nstates)
	for _, e := range edges {
		indeg[e.to]++
	}
	succBuf := make([]sg.Edge, len(edges))
	predBuf := make([]sg.Edge, len(edges))
	so, po := 0, 0
	for s := 0; s < nstates; s++ {
		if od := int(start[s+1] - start[s]); od > 0 {
			g.States[s].Succ = succBuf[so : so : so+od]
			so += od
		}
		if id := int(indeg[s]); id > 0 {
			g.States[s].Pred = predBuf[po : po : po+id]
			po += id
		}
	}
	for _, e := range edges {
		tr := n.Trans[e.trans]
		d := sg.Plus
		if tr.Dir == Minus {
			d = sg.Minus
		}
		if err := g.AddEdge(e.from, e.to, tr.Signal, d); err != nil {
			return nil, err
		}
	}
	return g, nil
}
