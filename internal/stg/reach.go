package stg

import (
	"fmt"

	"repro/internal/sg"
)

// DefaultStateLimit bounds reachability exploration to guard against
// state explosion in malformed nets.
const DefaultStateLimit = 1 << 20

// marking is a bitset over places.
type marking []uint64

func newMarking(places int) marking { return make(marking, (places+63)/64) }

func (m marking) has(p int) bool { return m[p/64]>>uint(p%64)&1 == 1 }
func (m marking) set(p int)      { m[p/64] |= 1 << uint(p%64) }
func (m marking) clear(p int)    { m[p/64] &^= 1 << uint(p%64) }
func (m marking) clone() marking { c := make(marking, len(m)); copy(c, m); return c }
func (m marking) key() string {
	b := make([]byte, len(m)*8)
	for i, w := range m {
		for j := 0; j < 8; j++ {
			b[i*8+j] = byte(w >> uint(8*j))
		}
	}
	return string(b)
}

// Enabled reports whether transition t is enabled under m.
func (n *STG) Enabled(m marking, t int) bool {
	if len(n.PreT[t]) == 0 {
		return false // source transitions unsupported: would be unsafe
	}
	for _, p := range n.PreT[t] {
		if !m.has(p) {
			return false
		}
	}
	return true
}

// fire returns the marking after firing t, or an error when the net is
// not 1-safe at this step.
func (n *STG) fire(m marking, t int) (marking, error) {
	out := m.clone()
	for _, p := range n.PreT[t] {
		out.clear(p)
	}
	for _, p := range n.PostT[t] {
		if out.has(p) {
			return nil, fmt.Errorf("stg: net not 1-safe: place %d doubly marked firing %s", p, n.TransLabel(t))
		}
		out.set(p)
	}
	return out, nil
}

// BuildSG explores the reachable markings of the net under interleaving
// semantics, infers a consistent binary encoding of the signals, and
// returns the state graph. It fails when the net is unsafe, the encoding
// is inconsistent (the STG violates the consistent state assignment
// rules), a signal never fires, or exploration exceeds DefaultStateLimit.
func BuildSG(n *STG) (*sg.Graph, error) {
	return BuildSGLimit(n, DefaultStateLimit)
}

// BuildSGLimit is BuildSG with an explicit bound on the number of states.
func BuildSGLimit(n *STG, limit int) (*sg.Graph, error) {
	if len(n.Signals) > 64 {
		return nil, fmt.Errorf("stg: %d signals exceed the 64-signal limit", len(n.Signals))
	}
	if len(n.Trans) == 0 {
		return nil, fmt.Errorf("stg: net has no transitions")
	}
	init := newMarking(n.NumPlaces())
	for p, ok := range n.InitialMarking {
		if ok {
			init.set(p)
		}
	}

	type edge struct{ from, trans, to int }
	index := map[string]int{init.key(): 0}
	marks := []marking{init}
	var edges []edge
	for head := 0; head < len(marks); head++ {
		m := marks[head]
		for t := range n.Trans {
			if !n.Enabled(m, t) {
				continue
			}
			next, err := n.fire(m, t)
			if err != nil {
				return nil, err
			}
			k := next.key()
			to, ok := index[k]
			if !ok {
				to = len(marks)
				if to >= limit {
					return nil, fmt.Errorf("stg: state limit %d exceeded", limit)
				}
				index[k] = to
				marks = append(marks, next)
			}
			edges = append(edges, edge{from: head, trans: t, to: to})
		}
	}

	// Infer signal values. val[s*nsig+sig] ∈ {unknown, zero, one}.
	const (
		unknown int8 = iota
		zero
		one
	)
	nsig := len(n.Signals)
	val := make([]int8, len(marks)*nsig)
	at := func(s, sig int) *int8 { return &val[s*nsig+sig] }

	assign := func(s, sig int, v int8) error {
		cur := at(s, sig)
		if *cur == unknown {
			*cur = v
			return nil
		}
		if *cur != v {
			return fmt.Errorf("stg: inconsistent state assignment for signal %s", n.Signals[sig])
		}
		return nil
	}

	// Adjacency for propagation.
	succ := make([][]edge, len(marks))
	for _, e := range edges {
		succ[e.from] = append(succ[e.from], e)
	}

	// Seed: an enabled a+ pins a=0, an enabled a- pins a=1.
	for s := range marks {
		for _, e := range succ[s] {
			tr := n.Trans[e.trans]
			want := zero
			if tr.Dir == Minus {
				want = one
			}
			if err := assign(s, tr.Signal, want); err != nil {
				return nil, err
			}
		}
	}
	// Propagate along edges in both directions until fixpoint.
	changed := true
	for changed {
		changed = false
		for s := range marks {
			for _, e := range succ[s] {
				tr := n.Trans[e.trans]
				for sig := 0; sig < nsig; sig++ {
					var fwd int8
					if sig == tr.Signal {
						fwd = zero
						if tr.Dir == Plus {
							fwd = one
						}
					} else {
						fwd = *at(s, sig)
					}
					if fwd != unknown && *at(e.to, sig) == unknown {
						*at(e.to, sig) = fwd
						changed = true
					}
					if fwd != unknown && *at(e.to, sig) != fwd {
						return nil, fmt.Errorf("stg: inconsistent state assignment for signal %s", n.Signals[sig])
					}
					// Backward: value at destination implies value at
					// source for unrelated signals.
					if sig != tr.Signal {
						back := *at(e.to, sig)
						if back != unknown && *at(s, sig) == unknown {
							*at(s, sig) = back
							changed = true
						}
					} else {
						// Before firing a±, a has the complementary value.
						before := one
						if tr.Dir == Plus {
							before = zero
						}
						if err := assign(s, sig, before); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}
	for sig := 0; sig < nsig; sig++ {
		if *at(0, sig) == unknown {
			return nil, fmt.Errorf("stg: signal %s never fires; cannot infer its value", n.Signals[sig])
		}
	}

	g := &sg.Graph{
		Name:    n.Name,
		Signals: append([]string(nil), n.Signals...),
		Input:   make([]bool, nsig),
		Initial: 0,
	}
	for i, k := range n.Kinds {
		g.Input[i] = k == Input
	}
	for s := range marks {
		var code uint64
		for sig := 0; sig < nsig; sig++ {
			if *at(s, sig) == one {
				code |= 1 << uint(sig)
			}
		}
		g.AddState(code)
	}
	for _, e := range edges {
		tr := n.Trans[e.trans]
		d := sg.Plus
		if tr.Dir == Minus {
			d = sg.Minus
		}
		if err := g.AddEdge(e.from, e.to, tr.Signal, d); err != nil {
			return nil, err
		}
	}
	return g, nil
}
