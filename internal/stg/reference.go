package stg

import (
	"fmt"

	"repro/internal/sg"
)

// This file retains the seed revision's map-based reachability loop as a
// differential-testing oracle for the arena/hash-table explorer in
// reach.go (see reach_diff_test.go). It shares the encoding-inference
// and graph-assembly code; only the token game differs: markings are
// cloned per fire and interned through a string-keyed map.

// key renders the marking as a byte-string map key.
func (m marking) key() string {
	b := make([]byte, len(m)*8)
	for i, w := range m {
		for j := 0; j < 8; j++ {
			b[i*8+j] = byte(w >> uint(8*j))
		}
	}
	return string(b)
}

// fireRef returns the marking after firing t, or an error when the net
// is not 1-safe at this step.
func (n *STG) fireRef(m marking, t int) (marking, error) {
	out := m.clone()
	for _, p := range n.PreT[t] {
		out.clear(p)
	}
	for _, p := range n.PostT[t] {
		if out.has(p) {
			return nil, fmt.Errorf("stg: net not 1-safe: place %d doubly marked firing %s", p, n.TransLabel(t))
		}
		out.set(p)
	}
	return out, nil
}

// exploreRef is the reference token game: same discovery order and
// same errors as explore, clone-and-map mechanics.
func exploreRef(n *STG, limit int) (int, []sgEdge, error) {
	init := newMarking(n.NumPlaces())
	for p, ok := range n.InitialMarking {
		if ok {
			init.set(p)
		}
	}
	index := map[string]int{init.key(): 0}
	marks := []marking{init}
	var edges []sgEdge
	for head := 0; head < len(marks); head++ {
		m := marks[head]
		for t := range n.Trans {
			if !n.Enabled(m, t) {
				continue
			}
			next, err := n.fireRef(m, t)
			if err != nil {
				return 0, nil, err
			}
			k := next.key()
			to, ok := index[k]
			if !ok {
				to = len(marks)
				if to >= limit {
					return 0, nil, fmt.Errorf("stg: state limit %d exceeded", limit)
				}
				index[k] = to
				marks = append(marks, next)
			}
			edges = append(edges, sgEdge{from: head, trans: t, to: to})
		}
	}
	return len(marks), edges, nil
}

// BuildSGRef is BuildSG on the reference explorer. Exported for the
// differential tests (and for bisecting any future reachability
// regression); production callers use BuildSG.
func BuildSGRef(n *STG, limit int) (*sg.Graph, error) {
	if err := checkBuildable(n); err != nil {
		return nil, err
	}
	nstates, edges, err := exploreRef(n, limit)
	if err != nil {
		return nil, err
	}
	return assembleSG(n, nstates, edges)
}
