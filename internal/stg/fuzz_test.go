package stg

import (
	"testing"
)

// FuzzParse asserts the .g parser's contract: malformed input must be
// rejected with an error, never with a panic. Run with
//
//	go test -fuzz FuzzParse ./internal/stg
//
// for coverage-guided exploration; plain `go test` replays the seed
// corpus below (each seed targets one historical panic path: duplicate
// declarations, place-to-place arcs, markings naming undeclared
// transitions).
func FuzzParse(f *testing.F) {
	f.Add(`
.model buf
.inputs x
.outputs y
.graph
x+ y+
y+ x-
x- y-
y- x+
.marking { <y-,x+> }
.end
`)
	f.Add(".inputs x x\n")
	f.Add(".inputs a\n.outputs a\n")
	f.Add(".graph\np0 p1\n")
	f.Add(".marking { <a+,b+> }\n")
	f.Add(".marking { <a+> }\n")
	f.Add(".marking { p9 }\n")
	f.Add(".inputs a\n.graph\na+ p\np a-\n.marking { p }\n.end\n")
	f.Add("a+ b+\n")
	f.Add(".inputs a\n.graph\na+/0 a-\n")
	f.Add(".model\n.graph\n.marking {}\n")
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src)
		if err == nil && n == nil {
			t.Fatal("Parse returned neither an STG nor an error")
		}
	})
}
