package stg

import (
	"testing"
)

// FuzzParse asserts the .g parser's contract: malformed input must be
// rejected with an error, never with a panic. Run with
//
//	go test -fuzz FuzzParse ./internal/stg
//
// for coverage-guided exploration; plain `go test` replays the seed
// corpus below (each seed targets one historical panic path: duplicate
// declarations, place-to-place arcs, markings naming undeclared
// transitions).
func FuzzParse(f *testing.F) {
	f.Add(`
.model buf
.inputs x
.outputs y
.graph
x+ y+
y+ x-
x- y-
y- x+
.marking { <y-,x+> }
.end
`)
	f.Add(".inputs x x\n")
	f.Add(".inputs a\n.outputs a\n")
	f.Add(".graph\np0 p1\n")
	f.Add(".marking { <a+,b+> }\n")
	f.Add(".marking { <a+> }\n")
	f.Add(".marking { p9 }\n")
	f.Add(".inputs a\n.graph\na+ p\np a-\n.marking { p }\n.end\n")
	f.Add("a+ b+\n")
	f.Add(".inputs a\n.graph\na+/0 a-\n")
	f.Add(".model\n.graph\n.marking {}\n")
	// A multi-round repair spec (the event duplicator needs two state
	// signals): indexed transitions (a+/2), multi-phase cycles and a
	// marking deep inside the super-cycle, so mutations explore the
	// syntax that feeds the cross-round repair path downstream.
	f.Add(`
.model duplicator
.inputs a b
.outputs x y
.graph
a+ x+
x+ a-
a- x-
x- a+/2
a+/2 b+
b+ x+/2
x+/2 a-/2
a-/2 x-/2
x-/2 a+/3
a+/3 y+
y+ a-/3
a-/3 y-
y- a+/4
a+/4 b-
b- y+/2
y+/2 a-/4
a-/4 y-/2
y-/2 a+
.marking { <y-/2,a+> }
.end
`)
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src)
		if err == nil && n == nil {
			t.Fatal("Parse returned neither an STG nor an error")
		}
	})
}
