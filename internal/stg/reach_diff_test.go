package stg_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/stg"
)

// Differential tests pinning the arena/hash-table explorer of BuildSG
// against the retained map-based reference (BuildSGRef): identical
// graphs — same state numbering, codes and edge order — on the Table-1
// benchmarks, the generated scaling families and random series-parallel
// specifications (same style as internal/core/diff_test.go).

func diffNets() map[string]*stg.STG {
	out := map[string]*stg.STG{}
	for _, e := range benchdata.Table1 {
		out[e.Name] = e.STG()
	}
	out["chain8"] = benchdata.GenBufferChain(8)
	out["fork6"] = benchdata.GenParallelizer(6)
	out["sel3"] = benchdata.GenSelectorRing(3)
	for seed := int64(0); seed < 15; seed++ {
		spec := benchdata.GenRandomSpec(seed, 3)
		out[spec.Net.Name] = spec.Net
	}
	return out
}

func TestDifferentialBuildSGVsMapReference(t *testing.T) {
	for name, net := range diffNets() {
		got, gerr := stg.BuildSG(net)
		want, werr := stg.BuildSGRef(net, stg.DefaultStateLimit)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("%s: error mismatch: %v vs reference %v", name, gerr, werr)
		}
		if gerr != nil {
			if gerr.Error() != werr.Error() {
				t.Fatalf("%s: error text mismatch: %q vs reference %q", name, gerr, werr)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: graphs differ:\n--- got ---\n%s--- reference ---\n%s",
				name, got.Dump(), want.Dump())
		}
	}
}

func TestDifferentialBuildSGStateLimit(t *testing.T) {
	// Both explorers must report the limit at the same threshold.
	net := benchdata.GenBufferChain(8)
	for _, limit := range []int{1, 2, 5, 16, 17, 18, 1 << 10} {
		_, gerr := stg.BuildSGLimit(net, limit)
		_, werr := stg.BuildSGRef(net, limit)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("limit %d: error mismatch: %v vs reference %v", limit, gerr, werr)
		}
		if gerr != nil && gerr.Error() != werr.Error() {
			t.Fatalf("limit %d: error text mismatch: %q vs reference %q", limit, gerr, werr)
		}
	}
}

// unsafeNet fires a+ (consuming q) into the already-marked place p —
// the canonical 1-safety violation.
const unsafeNet = `
.model unsafe
.inputs a
.outputs b
.graph
q a+
a+ p
p b+
.marking { p q }
.end
`

func TestBuildSGUnsafeNet(t *testing.T) {
	// Regression for the 1-safety error path: a failed fire must report
	// the doubly-marked place (and, since the scratch-marking rework, do
	// so without cloning a marking per attempt). Both explorers agree on
	// the exact error.
	net := stg.MustParse(unsafeNet)
	g, err := stg.BuildSG(net)
	if err == nil {
		t.Fatalf("unsafe net built a graph:\n%s", g.Dump())
	}
	if !strings.Contains(err.Error(), "not 1-safe") {
		t.Fatalf("error %q does not mention 1-safety", err)
	}
	_, werr := stg.BuildSGRef(net, stg.DefaultStateLimit)
	if werr == nil || werr.Error() != err.Error() {
		t.Fatalf("reference disagrees: %v vs %v", werr, err)
	}
}

func TestBuildSGUnsafeNetDoesNotLeakPerAttempt(t *testing.T) {
	// The error is detected on the very first expansion; the whole
	// attempt should stay within the fixed setup allocations (masks,
	// table, scratches) rather than cloning markings per fire.
	net := stg.MustParse(unsafeNet)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := stg.BuildSG(net); err == nil {
			t.Fatal("unsafe net must not build")
		}
	})
	if allocs > 32 {
		t.Fatalf("unsafe-net BuildSG costs %.0f allocs/attempt; the error path is leaking", allocs)
	}
}
