package stg_test

import (
	"strings"
	"testing"

	"repro/internal/stg"
)

const handshakeG = `
# simple two-phase handshake
.model handshake
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
`

const diamondG = `
.model diamond
.inputs r
.outputs x y
.graph
r+ x+ y+
x+ r-
y+ r-
r- x- y-
x- r+
y- r+
.marking { <x-,r+> <y-,r+> }
.end
`

const choiceG = `
.model choice
.inputs a b
.outputs c
.graph
p0 a+ b+
a+ c+
c+ a-
a- c-
c- p0
b+ c+/2
c+/2 b-
b- c-/2
c-/2 p0
.marking { p0 }
.end
`

func TestParseHandshake(t *testing.T) {
	n, err := stg.Parse(handshakeG)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "handshake" {
		t.Errorf("name = %q", n.Name)
	}
	if len(n.Signals) != 2 || len(n.Trans) != 4 {
		t.Fatalf("signals=%d trans=%d", len(n.Signals), len(n.Trans))
	}
	if n.Kinds[n.SignalIndex("req")] != stg.Input {
		t.Error("req must be an input")
	}
	if n.Kinds[n.SignalIndex("ack")] != stg.Output {
		t.Error("ack must be an output")
	}
}

func TestHandshakeSG(t *testing.T) {
	g, err := stg.BuildSG(stg.MustParse(handshakeG))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 4 {
		t.Fatalf("handshake SG has %d states, want 4", g.NumStates())
	}
	if !g.SemiModular() {
		t.Error("handshake is semi-modular")
	}
	if !g.USC() {
		t.Error("handshake has unique state codes")
	}
	// Initial state: both signals 0, req+ excited.
	if g.States[g.Initial].Code != 0 {
		t.Errorf("initial code = %b", g.States[g.Initial].Code)
	}
	if !g.Excited(g.Initial, g.SignalIndex("req")) {
		t.Error("req+ must be excited initially")
	}
	if g.Excited(g.Initial, g.SignalIndex("ack")) {
		t.Error("ack must be stable initially")
	}
}

func TestDiamondSG(t *testing.T) {
	g, err := stg.BuildSG(stg.MustParse(diamondG))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 8 {
		t.Fatalf("diamond SG has %d states, want 8", g.NumStates())
	}
	if !g.SemiModular() {
		t.Error("marked graphs are semi-modular")
	}
	if !g.Distributive() {
		t.Error("this marked graph is distributive")
	}
	// x and y are concurrent after r+: some state has both excited.
	x, y := g.SignalIndex("x"), g.SignalIndex("y")
	both := false
	for s := 0; s < g.NumStates(); s++ {
		if g.Excited(s, x) && g.Excited(s, y) {
			both = true
		}
	}
	if !both {
		t.Error("x and y should be concurrently excited somewhere")
	}
}

func TestChoiceSG(t *testing.T) {
	g, err := stg.BuildSG(stg.MustParse(choiceG))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 7 {
		t.Fatalf("choice SG has %d states, want 7", g.NumStates())
	}
	if g.SemiModular() {
		t.Error("input choice creates a (benign) conflict state")
	}
	if !g.OutputSemiModular() {
		t.Error("the choice is between inputs only")
	}
	// c fires in both branches: two ER(+c) regions.
	c := g.SignalIndex("c")
	regs := g.RegionsOf(c)
	plus := 0
	for _, er := range regs.ER {
		if er.Dir > 0 {
			plus++
		}
	}
	if plus != 2 {
		t.Errorf("ER(+c) regions = %d, want 2", plus)
	}
}

func TestUnsafeNetRejected(t *testing.T) {
	src := `
.model unsafe
.inputs a
.outputs b
.graph
p a+
a+ q
b+ q
r b+
a- p
q a-
.marking { p r q }
.end
`
	n, err := stg.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stg.BuildSG(n); err == nil || !strings.Contains(err.Error(), "1-safe") {
		t.Fatalf("unsafe net must be rejected, got %v", err)
	}
}

func TestInconsistentAssignmentRejected(t *testing.T) {
	// a+ fires twice in a row without a-.
	src := `
.model inconsistent
.inputs a b
.graph
a+ b+
b+ a+/2
a+/2 b-
b- a+
.marking { <b-,a+> }
.end
`
	n, err := stg.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stg.BuildSG(n); err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("inconsistent STG must be rejected, got %v", err)
	}
}

func TestUnusedSignalRejected(t *testing.T) {
	src := `
.model unused
.inputs a ghost
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
`
	n, err := stg.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stg.BuildSG(n); err == nil || !strings.Contains(err.Error(), "never fires") {
		t.Fatalf("unused signal must be rejected, got %v", err)
	}
}

func TestStateLimit(t *testing.T) {
	n := stg.MustParse(diamondG)
	if _, err := stg.BuildSGLimit(n, 3); err == nil || !strings.Contains(err.Error(), "state limit") {
		t.Fatalf("limit must trigger, got %v", err)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	for _, src := range []string{handshakeG, diamondG, choiceG} {
		n1 := stg.MustParse(src)
		g1, err := stg.BuildSG(n1)
		if err != nil {
			t.Fatal(err)
		}
		text := n1.Format()
		n2, err := stg.Parse(text)
		if err != nil {
			t.Fatalf("re-parse failed: %v\n%s", err, text)
		}
		g2, err := stg.BuildSG(n2)
		if err != nil {
			t.Fatalf("re-build failed: %v\n%s", err, text)
		}
		if g1.NumStates() != g2.NumStates() {
			t.Errorf("round trip changed state count: %d → %d\n%s",
				g1.NumStates(), g2.NumStates(), text)
		}
	}
}

func TestTransLabels(t *testing.T) {
	n := stg.MustParse(choiceG)
	labels := map[string]bool{}
	for i := range n.Trans {
		labels[n.TransLabel(i)] = true
	}
	for _, want := range []string{"a+", "a-", "b+", "b-", "c+", "c+/2", "c-", "c-/2"} {
		if !labels[want] {
			t.Errorf("missing transition %q (have %v)", want, labels)
		}
	}
}

func TestBuilderAPI(t *testing.T) {
	b := stg.NewBuilder("toy")
	b.Signal("a", stg.Input)
	b.Signal("z", stg.Output)
	b.Arc("a+", "z+")
	b.Arc("z+", "a-")
	b.Arc("a-", "z-")
	b.Arc("z-", "a+")
	b.MarkBetween("z-", "a+")
	g, err := stg.BuildSG(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 4 {
		t.Fatalf("states = %d", g.NumStates())
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := stg.Parse(".model x\n.graph\n"); err == nil {
		// no transitions: error surfaces at BuildSG
		n := stg.MustParse(".model x\n.graph\n")
		if _, err := stg.BuildSG(n); err == nil {
			t.Fatal("empty net must be rejected")
		}
	}
	if _, err := stg.Parse("junk line\n"); err == nil {
		t.Fatal("adjacency outside .graph must be rejected")
	}
	if _, err := stg.Parse(".inputs a\n.graph\na+ a-\n.marking { q }\n.end\n"); err == nil {
		t.Fatal("marking with unknown place must be rejected")
	}
}
