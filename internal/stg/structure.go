package stg

import (
	"fmt"
	"strings"
)

// Class is the structural class of the underlying Petri net.
type Class int8

// Structural net classes, from most to least restricted.
const (
	// MarkedGraph: every place has at most one producer and one consumer
	// — no choice, only concurrency (the STGs of distributive circuits).
	MarkedGraph Class = iota
	// StateMachine: every transition has at most one input and one
	// output place — no concurrency, only choice.
	StateMachine
	// FreeChoice: conflicts are free — if a place feeds several
	// transitions, it is their only input place.
	FreeChoice
	// General: none of the above.
	General
)

// String names the class.
func (c Class) String() string {
	switch c {
	case MarkedGraph:
		return "marked graph"
	case StateMachine:
		return "state machine"
	case FreeChoice:
		return "free choice"
	default:
		return "general"
	}
}

// preP and postP compute the producer/consumer transitions of a place.
func (n *STG) placeArcs() (preP, postP [][]int) {
	preP = make([][]int, n.NumPlaces())
	postP = make([][]int, n.NumPlaces())
	for t := range n.Trans {
		for _, p := range n.PostT[t] {
			preP[p] = append(preP[p], t)
		}
		for _, p := range n.PreT[t] {
			postP[p] = append(postP[p], t)
		}
	}
	return preP, postP
}

// Classify determines the structural class of the net.
func (n *STG) Classify() Class {
	preP, postP := n.placeArcs()
	mg := true
	for p := range n.PlaceNames {
		if len(preP[p]) > 1 || len(postP[p]) > 1 {
			mg = false
			break
		}
	}
	if mg {
		return MarkedGraph
	}
	sm := true
	for t := range n.Trans {
		if len(n.PreT[t]) > 1 || len(n.PostT[t]) > 1 {
			sm = false
			break
		}
	}
	if sm {
		return StateMachine
	}
	fc := true
	for p := range n.PlaceNames {
		if len(postP[p]) <= 1 {
			continue
		}
		for _, t := range postP[p] {
			if len(n.PreT[t]) != 1 {
				fc = false
			}
		}
	}
	if fc {
		return FreeChoice
	}
	return General
}

// CheckMarkedGraphLive verifies the classical liveness criterion for
// marked graphs: every directed cycle carries at least one token.
// It returns an error naming a token-free cycle, or nil. Calling it on a
// non-marked-graph net returns an error.
func (n *STG) CheckMarkedGraphLive() error {
	if n.Classify() != MarkedGraph {
		return fmt.Errorf("stg: %s is not a marked graph", n.Name)
	}
	// Transitions are nodes; an unmarked place is an edge from its
	// producer to its consumer. A cycle in this graph is a token-free
	// cycle of the net.
	preP, postP := n.placeArcs()
	adj := make([][]int, len(n.Trans)) // successor transitions via unmarked places
	label := make([]map[int]int, len(n.Trans))
	for p := range n.PlaceNames {
		if n.InitialMarking[p] || len(preP[p]) == 0 || len(postP[p]) == 0 {
			continue
		}
		from, to := preP[p][0], postP[p][0]
		adj[from] = append(adj[from], to)
		if label[from] == nil {
			label[from] = map[int]int{}
		}
		label[from][to] = p
	}
	const (
		white = iota
		gray
		black
	)
	color := make([]int8, len(n.Trans))
	parent := make([]int, len(n.Trans))
	for i := range parent {
		parent[i] = -1
	}
	var cycleAt int = -1
	var cycleTo int
	var dfs func(t int) bool
	dfs = func(t int) bool {
		color[t] = gray
		for _, u := range adj[t] {
			if color[u] == gray {
				cycleAt, cycleTo = t, u
				return true
			}
			if color[u] == white {
				parent[u] = t
				if dfs(u) {
					return true
				}
			}
		}
		color[t] = black
		return false
	}
	for t := range n.Trans {
		if color[t] == white && dfs(t) {
			// Reconstruct the cycle for the diagnostic.
			var names []string
			names = append(names, n.TransLabel(cycleTo))
			for v := cycleAt; v != cycleTo && v != -1; v = parent[v] {
				names = append(names, n.TransLabel(v))
			}
			for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
				names[i], names[j] = names[j], names[i]
			}
			return fmt.Errorf("stg: token-free cycle: %s", strings.Join(names, " → "))
		}
	}
	return nil
}

// CheckSignalBalance verifies that every signal has both rising and
// falling transitions — a necessary structural condition for a
// consistent, cyclic STG.
func (n *STG) CheckSignalBalance() error {
	type pair struct{ plus, minus bool }
	seen := make([]pair, len(n.Signals))
	for _, tr := range n.Trans {
		if tr.Dir == Plus {
			seen[tr.Signal].plus = true
		} else {
			seen[tr.Signal].minus = true
		}
	}
	for sig, p := range seen {
		if !p.plus || !p.minus {
			return fmt.Errorf("stg: signal %s lacks %s transitions",
				n.Signals[sig], map[bool]string{true: "falling", false: "rising"}[p.plus])
		}
	}
	return nil
}

// StructureReport summarizes the structural analysis.
type StructureReport struct {
	Class      Class
	Places     int
	Trans      int
	Tokens     int
	Live       error // marked-graph liveness verdict (nil, a cycle, or inapplicable)
	Balanced   error
	ChoicePlcs int // places with more than one consumer
}

// Structure computes the report.
func (n *STG) Structure() StructureReport {
	_, postP := n.placeArcs()
	rep := StructureReport{
		Class:    n.Classify(),
		Places:   n.NumPlaces(),
		Trans:    len(n.Trans),
		Balanced: n.CheckSignalBalance(),
	}
	for p := range n.PlaceNames {
		if n.InitialMarking[p] {
			rep.Tokens++
		}
		if len(postP[p]) > 1 {
			rep.ChoicePlcs++
		}
	}
	if rep.Class == MarkedGraph {
		rep.Live = n.CheckMarkedGraphLive()
	} else {
		rep.Live = fmt.Errorf("stg: liveness check only implemented for marked graphs")
	}
	return rep
}

// String renders the report.
func (r StructureReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "class: %s\n", r.Class)
	fmt.Fprintf(&b, "places: %d (%d marked, %d choice), transitions: %d\n",
		r.Places, r.Tokens, r.ChoicePlcs, r.Trans)
	if r.Class == MarkedGraph {
		if r.Live == nil {
			b.WriteString("liveness: every cycle marked\n")
		} else {
			fmt.Fprintf(&b, "liveness: %v\n", r.Live)
		}
	}
	if r.Balanced == nil {
		b.WriteString("signal transitions: balanced")
	} else {
		fmt.Fprintf(&b, "signal transitions: %v", r.Balanced)
	}
	return b.String()
}
