package stg_test

import (
	"strings"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/stg"
)

func TestClassifyMarkedGraph(t *testing.T) {
	n := stg.MustParse(diamondG)
	if c := n.Classify(); c != stg.MarkedGraph {
		t.Fatalf("diamond classifies as %v, want marked graph", c)
	}
	if err := n.CheckMarkedGraphLive(); err != nil {
		t.Fatalf("diamond is live: %v", err)
	}
}

func TestClassifyStateMachine(t *testing.T) {
	// The handshake is a pure cycle: both a marked graph and a state
	// machine; the classifier prefers the marked-graph label, so build a
	// net with a choice and no concurrency.
	n := stg.MustParse(choiceG)
	if c := n.Classify(); c != stg.StateMachine {
		t.Fatalf("choice ring classifies as %v, want state machine", c)
	}
}

func TestClassifyFreeChoice(t *testing.T) {
	// Choice plus concurrency: a free-choice place feeding two
	// transitions plus a concurrent fork elsewhere.
	src := `
.model fc
.inputs a b r
.outputs x y
.graph
pc a+ b+
a+ x+
x+ a-
a- x-
x- pc
b+ y+
y+ b-
b- y-
y- pc
r+ x+
x- r-
r- r+
.marking { pc <r-,r+> }
.end
`
	// r+ joins x+ (two input places for x+), pc has two consumers with
	// single... a+ has pre {pc} only; but x+ has two pre places (from a+
	// and r+) — pc's consumers a+/b+ each have one input place → still
	// free choice.
	n := stg.MustParse(src)
	if c := n.Classify(); c != stg.FreeChoice {
		t.Fatalf("classifies as %v, want free choice", c)
	}
}

func TestClassifyGeneral(t *testing.T) {
	// Non-free choice: place with two consumers where one consumer has
	// another input place (asymmetric confusion).
	src := `
.model gen
.inputs a b
.outputs x
.graph
p a+ x+
q x+
a+ a-
a- p
b+ q
x+ x-
x- b+
.marking { p q <x-,b+>}
.end
`
	n, err := stg.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c := n.Classify(); c != stg.General {
		t.Fatalf("classifies as %v, want general", c)
	}
}

func TestTokenFreeCycleDetected(t *testing.T) {
	// A marked graph whose inner cycle has no token is dead.
	src := `
.model dead
.inputs a
.outputs x
.graph
a+ x+
x+ a-
a- x-
x- a+
.marking { }
.end
`
	n := stg.MustParse(src)
	if n.Classify() != stg.MarkedGraph {
		t.Fatal("expected a marked graph")
	}
	err := n.CheckMarkedGraphLive()
	if err == nil || !strings.Contains(err.Error(), "token-free cycle") {
		t.Fatalf("expected a token-free cycle, got %v", err)
	}
}

func TestLivenessRejectsNonMG(t *testing.T) {
	n := stg.MustParse(choiceG)
	if err := n.CheckMarkedGraphLive(); err == nil {
		t.Fatal("non-marked-graph must be rejected")
	}
}

func TestSignalBalance(t *testing.T) {
	if err := stg.MustParse(handshakeG).CheckSignalBalance(); err != nil {
		t.Fatal(err)
	}
	src := `
.model unbalanced
.inputs a
.outputs x
.graph
a+ x+
x+ a-
a- x+/2
x+/2 a+
.marking { <x+/2,a+> }
.end
`
	n := stg.MustParse(src)
	if err := n.CheckSignalBalance(); err == nil {
		t.Fatal("x never falls; must be reported")
	}
}

func TestStructureReportOnTable1(t *testing.T) {
	for _, e := range benchdata.Table1 {
		rep := e.STG().Structure()
		if rep.Balanced != nil {
			t.Errorf("%s: %v", e.Name, rep.Balanced)
		}
		if rep.Trans == 0 || rep.Places == 0 || rep.Tokens == 0 {
			t.Errorf("%s: degenerate structure %+v", e.Name, rep)
		}
		if e.Name == "mp-forward-pkt" {
			if rep.Class != stg.MarkedGraph {
				t.Errorf("mp-forward-pkt should be a marked graph, got %v", rep.Class)
			}
			if rep.Live != nil {
				t.Errorf("mp-forward-pkt should be live: %v", rep.Live)
			}
		}
		if e.Name == "nak-pa" && rep.ChoicePlcs == 0 {
			t.Error("nak-pa has an input choice")
		}
		if s := rep.String(); !strings.Contains(s, "class:") {
			t.Errorf("%s: report rendering %q", e.Name, s)
		}
	}
}

func TestClassStrings(t *testing.T) {
	for c, want := range map[stg.Class]string{
		stg.MarkedGraph:  "marked graph",
		stg.StateMachine: "state machine",
		stg.FreeChoice:   "free choice",
		stg.General:      "general",
	} {
		if c.String() != want {
			t.Errorf("%d renders %q", c, c.String())
		}
	}
}
