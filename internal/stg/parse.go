package stg

import (
	"bufio"
	"fmt"
	"strings"

	"repro/internal/obs"
)

// Parse reads an STG in the astg ".g" dialect. Lines beginning with '#'
// and empty lines are ignored. Recognized directives: .model/.name,
// .inputs, .outputs, .internal, .graph, .marking, .end; everything between
// .graph and .marking is adjacency. Unknown dot-directives are skipped.
func Parse(src string) (*STG, error) {
	var sp *obs.Span
	if obs.Enabled() {
		sp = obs.Start("parse", obs.A("bytes", len(src)))
	}
	defer sp.End()
	defer sp.AttrMemDelta(obs.MarkMem())
	sc := bufio.NewScanner(strings.NewReader(src))
	b := NewBuilder("stg")
	var graphLines [][]string
	var marking []string
	inGraph := false
	lineNo := 0
	declare := func(names []string, kind SignalKind) error {
		for _, s := range names {
			if b.n.SignalIndex(s) >= 0 {
				return fmt.Errorf("stg: line %d: duplicate signal %q", lineNo, s)
			}
			b.Signal(s, kind)
		}
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, ".model") || strings.HasPrefix(line, ".name"):
			if len(fields) > 1 {
				b.n.Name = fields[1]
			}
		case strings.HasPrefix(line, ".inputs"):
			if err := declare(fields[1:], Input); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, ".outputs"):
			if err := declare(fields[1:], Output); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, ".internal"):
			if err := declare(fields[1:], Internal); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, ".graph"):
			inGraph = true
		case strings.HasPrefix(line, ".marking"):
			inGraph = false
			m := line[len(".marking"):]
			m = strings.Trim(strings.TrimSpace(m), "{}")
			m = strings.ReplaceAll(m, "<", " <")
			m = strings.ReplaceAll(m, ">", "> ")
			marking = strings.Fields(m)
		case strings.HasPrefix(line, ".end"):
			inGraph = false
		case strings.HasPrefix(line, "."):
			// Unknown directive (.dummy, .slowenv, …): ignore.
		default:
			if !inGraph {
				return nil, fmt.Errorf("stg: line %d: adjacency outside .graph section: %q", lineNo, line)
			}
			graphLines = append(graphLines, fields)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fields := range graphLines {
		from := fields[0]
		for _, to := range fields[1:] {
			if !b.isTransLabel(from) && !b.isTransLabel(to) {
				return nil, fmt.Errorf("stg: place-to-place arc %q -> %q", from, to)
			}
			b.Arc(from, to)
		}
	}
	for _, m := range marking {
		if strings.HasPrefix(m, "<") && strings.HasSuffix(m, ">") {
			pair := strings.Split(strings.Trim(m, "<>"), ",")
			if len(pair) != 2 {
				return nil, fmt.Errorf("stg: bad marking token %q", m)
			}
			from, to := strings.TrimSpace(pair[0]), strings.TrimSpace(pair[1])
			if !b.isTransLabel(from) || !b.isTransLabel(to) {
				return nil, fmt.Errorf("stg: marking token %q names an undeclared transition", m)
			}
			b.MarkBetween(from, to)
			continue
		}
		if _, ok := b.placeByID[m]; !ok {
			return nil, fmt.Errorf("stg: marking references unknown place %q", m)
		}
		b.MarkPlace(m)
	}
	if sp != nil {
		sp.SetAttr("spec", b.n.Name)
	}
	return b.Build(), nil
}

// MustParse parses src and panics on error; for embedded benchmark
// definitions and tests.
func MustParse(src string) *STG {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}
