// Package stg implements Signal Transition Graphs — interpreted safe
// Petri nets whose transitions are labelled with rising (+) and falling
// (−) signal edges. STGs are the high-level front-end of the synthesis
// flow: the paper's theory works on state graphs, and this package builds
// them by playing the token game over the net's reachable markings
// (interleaving semantics) while inferring a consistent binary encoding.
//
// The textual format understood by Parse is the astg ".g" dialect used by
// SIS and petrify: ".inputs"/".outputs"/".internal" declarations, a
// ".graph" section of adjacency lines over transitions (a+, b-, c+/2) and
// explicit places, and a ".marking { ... }" line with <t,t'> denoting
// tokens on implicit places.
package stg

import (
	"fmt"
	"sort"
	"strings"
)

// SignalKind classifies a signal.
type SignalKind int8

// Signal kinds.
const (
	Input SignalKind = iota
	Output
	Internal
)

// Dir is the direction of a transition label.
type Dir int8

// Directions.
const (
	Plus  Dir = +1
	Minus Dir = -1
)

func (d Dir) String() string {
	if d == Plus {
		return "+"
	}
	return "-"
}

// Transition is a labelled Petri-net transition: the Occur-th occurrence
// of signal Signal switching in direction Dir.
type Transition struct {
	Signal int
	Dir    Dir
	Occur  int // 1-based occurrence index; /1 is printed without suffix
}

// STG is a labelled safe Petri net.
type STG struct {
	Name    string
	Signals []string
	Kinds   []SignalKind
	Trans   []Transition

	// Places: PreT[t] lists places consumed by transition t, PostT[t]
	// places produced. PlaceNames[p] is "" for implicit places.
	PlaceNames []string
	PreT       [][]int
	PostT      [][]int

	// InitialMarking[p] reports whether place p initially holds a token.
	InitialMarking []bool
}

// NumPlaces returns the number of places.
func (n *STG) NumPlaces() int { return len(n.PlaceNames) }

// SignalIndex returns the id of a named signal or -1.
func (n *STG) SignalIndex(name string) int {
	for i, s := range n.Signals {
		if s == name {
			return i
		}
	}
	return -1
}

// TransLabel renders transition t as "a+", "b-", "c+/2".
func (n *STG) TransLabel(t int) string {
	tr := n.Trans[t]
	s := n.Signals[tr.Signal] + tr.Dir.String()
	if tr.Occur > 1 {
		s += fmt.Sprintf("/%d", tr.Occur)
	}
	return s
}

// findTrans returns the index of the transition with the given label
// parts, or -1.
func (n *STG) findTrans(sig int, d Dir, occur int) int {
	for i, t := range n.Trans {
		if t.Signal == sig && t.Dir == d && t.Occur == occur {
			return i
		}
	}
	return -1
}

// Builder incrementally constructs an STG. All methods panic on misuse
// (duplicate signals, unknown names); builders are driven by tests and
// embedded benchmark definitions where a panic is a programming error.
type Builder struct {
	n         *STG
	placeByID map[string]int
}

// NewBuilder returns a Builder for a named STG.
func NewBuilder(name string) *Builder {
	return &Builder{n: &STG{Name: name}, placeByID: map[string]int{}}
}

// Signal declares a signal and returns its id.
func (b *Builder) Signal(name string, kind SignalKind) int {
	if b.n.SignalIndex(name) >= 0 {
		panic("stg: duplicate signal " + name)
	}
	b.n.Signals = append(b.n.Signals, name)
	b.n.Kinds = append(b.n.Kinds, kind)
	return len(b.n.Signals) - 1
}

// trans interns the transition with the given label parts.
func (b *Builder) trans(label string) int {
	sig, d, occur, err := b.n.parseTransLabel(label)
	if err != nil {
		panic(err)
	}
	if t := b.n.findTrans(sig, d, occur); t >= 0 {
		return t
	}
	b.n.Trans = append(b.n.Trans, Transition{Signal: sig, Dir: d, Occur: occur})
	b.n.PreT = append(b.n.PreT, nil)
	b.n.PostT = append(b.n.PostT, nil)
	return len(b.n.Trans) - 1
}

// place interns a named (explicit) place.
func (b *Builder) place(name string) int {
	if p, ok := b.placeByID[name]; ok {
		return p
	}
	p := len(b.n.PlaceNames)
	b.n.PlaceNames = append(b.n.PlaceNames, name)
	b.n.InitialMarking = append(b.n.InitialMarking, false)
	b.placeByID[name] = p
	return p
}

// implicitPlace creates (or returns) the implicit place between two
// transitions.
func (b *Builder) implicitPlace(from, to int) int {
	key := fmt.Sprintf("<%s,%s>", b.n.TransLabel(from), b.n.TransLabel(to))
	if p, ok := b.placeByID[key]; ok {
		return p
	}
	p := len(b.n.PlaceNames)
	b.n.PlaceNames = append(b.n.PlaceNames, "")
	b.n.InitialMarking = append(b.n.InitialMarking, false)
	b.placeByID[key] = p
	b.n.PostT[from] = append(b.n.PostT[from], p)
	b.n.PreT[to] = append(b.n.PreT[to], p)
	return p
}

// Arc adds an arc between two nodes given as labels: transition labels
// ("a+", "b-/2") or explicit place names (anything else). An arc between
// two transitions creates the implicit place between them.
func (b *Builder) Arc(from, to string) {
	fromT, toT := b.isTransLabel(from), b.isTransLabel(to)
	switch {
	case fromT && toT:
		b.implicitPlace(b.trans(from), b.trans(to))
	case fromT && !toT:
		t, p := b.trans(from), b.place(to)
		b.n.PostT[t] = append(b.n.PostT[t], p)
	case !fromT && toT:
		p, t := b.place(from), b.trans(to)
		b.n.PreT[t] = append(b.n.PreT[t], p)
	default:
		panic("stg: place-to-place arc " + from + " -> " + to)
	}
}

// isTransLabel reports whether the label parses as a transition of a
// declared signal.
func (b *Builder) isTransLabel(label string) bool {
	_, _, _, err := b.n.parseTransLabel(label)
	return err == nil
}

// MarkPlace puts the initial token on an explicit place.
func (b *Builder) MarkPlace(name string) {
	p, ok := b.placeByID[name]
	if !ok {
		panic("stg: marking unknown place " + name)
	}
	b.n.InitialMarking[p] = true
}

// MarkBetween puts the initial token on the implicit place between two
// transitions (creating it if the arc was not yet declared).
func (b *Builder) MarkBetween(from, to string) {
	p := b.implicitPlace(b.trans(from), b.trans(to))
	b.n.InitialMarking[p] = true
}

// Build finalizes and returns the STG.
func (b *Builder) Build() *STG { return b.n }

// parseTransLabel splits "a+", "b-", "c+/2" into components. It fails
// when the signal is undeclared or the syntax is wrong.
func (n *STG) parseTransLabel(label string) (sig int, d Dir, occur int, err error) {
	occur = 1
	body := label
	if i := strings.IndexByte(label, '/'); i >= 0 {
		if _, e := fmt.Sscanf(label[i+1:], "%d", &occur); e != nil || occur < 1 {
			return 0, 0, 0, fmt.Errorf("stg: bad occurrence suffix in %q", label)
		}
		body = label[:i]
	}
	if len(body) < 2 {
		return 0, 0, 0, fmt.Errorf("stg: bad transition label %q", label)
	}
	switch body[len(body)-1] {
	case '+':
		d = Plus
	case '-':
		d = Minus
	default:
		return 0, 0, 0, fmt.Errorf("stg: transition label %q lacks +/-", label)
	}
	sig = n.SignalIndex(body[:len(body)-1])
	if sig < 0 {
		return 0, 0, 0, fmt.Errorf("stg: unknown signal in label %q", label)
	}
	return sig, d, occur, nil
}

// Format renders the STG in the astg ".g" dialect.
func (n *STG) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".model %s\n", n.Name)
	var ins, outs, ints []string
	for i, s := range n.Signals {
		switch n.Kinds[i] {
		case Input:
			ins = append(ins, s)
		case Output:
			outs = append(outs, s)
		default:
			ints = append(ints, s)
		}
	}
	if len(ins) > 0 {
		fmt.Fprintf(&b, ".inputs %s\n", strings.Join(ins, " "))
	}
	if len(outs) > 0 {
		fmt.Fprintf(&b, ".outputs %s\n", strings.Join(outs, " "))
	}
	if len(ints) > 0 {
		fmt.Fprintf(&b, ".internal %s\n", strings.Join(ints, " "))
	}
	b.WriteString(".graph\n")
	// Adjacency: for each transition, successors through implicit places;
	// explicit places printed by name.
	type adj struct {
		from string
		tos  []string
	}
	var rows []adj
	for t := range n.Trans {
		row := adj{from: n.TransLabel(t)}
		for _, p := range n.PostT[t] {
			if n.PlaceNames[p] != "" {
				row.tos = append(row.tos, n.PlaceNames[p])
				continue
			}
			for t2 := range n.Trans {
				for _, q := range n.PreT[t2] {
					if q == p {
						row.tos = append(row.tos, n.TransLabel(t2))
					}
				}
			}
		}
		if len(row.tos) > 0 {
			rows = append(rows, row)
		}
	}
	for p, name := range n.PlaceNames {
		if name == "" {
			continue
		}
		row := adj{from: name}
		for t := range n.Trans {
			for _, q := range n.PreT[t] {
				if q == p {
					row.tos = append(row.tos, n.TransLabel(t))
				}
			}
		}
		rows = append(rows, row)
	}
	for _, r := range rows {
		sort.Strings(r.tos)
		fmt.Fprintf(&b, "%s %s\n", r.from, strings.Join(r.tos, " "))
	}
	// Marking.
	var marks []string
	for p, m := range n.InitialMarking {
		if !m {
			continue
		}
		if n.PlaceNames[p] != "" {
			marks = append(marks, n.PlaceNames[p])
			continue
		}
		var from, to string
		for t := range n.Trans {
			for _, q := range n.PostT[t] {
				if q == p {
					from = n.TransLabel(t)
				}
			}
			for _, q := range n.PreT[t] {
				if q == p {
					to = n.TransLabel(t)
				}
			}
		}
		marks = append(marks, fmt.Sprintf("<%s,%s>", from, to))
	}
	sort.Strings(marks)
	fmt.Fprintf(&b, ".marking { %s }\n.end\n", strings.Join(marks, " "))
	return b.String()
}
