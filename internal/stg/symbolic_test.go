package stg_test

import (
	"strings"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/stg"
)

func TestSymbolicMatchesExplicitOnFixtures(t *testing.T) {
	for _, src := range []string{handshakeG, diamondG, choiceG} {
		n := stg.MustParse(src)
		g, err := stg.BuildSG(n)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := stg.SymbolicReachability(n)
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		if rep.States != uint64(g.NumStates()) {
			t.Errorf("%s: symbolic %d states, explicit %d", n.Name, rep.States, g.NumStates())
		}
	}
}

func TestSymbolicMatchesExplicitOnTable1(t *testing.T) {
	for _, e := range benchdata.Table1 {
		n := e.STG()
		g, err := stg.BuildSG(n)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := stg.SymbolicReachability(n)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if rep.States != uint64(g.NumStates()) {
			t.Errorf("%s: symbolic %d states, explicit %d", e.Name, rep.States, g.NumStates())
		}
		if rep.Iters == 0 || rep.BDDNodes == 0 {
			t.Errorf("%s: degenerate report %+v", e.Name, rep)
		}
	}
}

func TestSymbolicScalesOnWideFork(t *testing.T) {
	// A 18-way fork has 2·2^18 = 524288 markings: far beyond comfortable
	// explicit exploration, trivial symbolically.
	n := benchdata.GenParallelizer(18)
	rep, err := stg.SymbolicReachability(n)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(2) << 18; rep.States != want {
		t.Fatalf("fork18: %d states, want %d", rep.States, want)
	}
	// The reachable set of a fork is almost a product form: its BDD is
	// tiny even though it encodes half a million markings.
	if rep.FinalSize > 500 {
		t.Errorf("reachable-set BDD has %d nodes, expected a compact form", rep.FinalSize)
	}
}

func TestSymbolicDetectsUnsafe(t *testing.T) {
	src := `
.model unsafe
.inputs a
.outputs b
.graph
p a+
a+ q
b+ q
r b+
a- p
q a-
.marking { p r q }
.end
`
	n := stg.MustParse(src)
	_, err := stg.SymbolicReachability(n)
	if err == nil || !strings.Contains(err.Error(), "1-safe") {
		t.Fatalf("unsafe net must be reported, got %v", err)
	}
}

func TestSymbolicMatchesRandomSpecs(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		spec := benchdata.GenRandomSpec(seed, 4)
		g, err := stg.BuildSG(spec.Net)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := stg.SymbolicReachability(spec.Net)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.States != uint64(g.NumStates()) {
			t.Errorf("seed %d: symbolic %d, explicit %d", seed, rep.States, g.NumStates())
		}
	}
}

func TestSymbolicValuesMatchExplicit(t *testing.T) {
	for _, e := range benchdata.Table1 {
		n := e.STG()
		g, err := stg.BuildSG(n)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := stg.NewSymbolicSpace(n)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if err := sp.ComputeValues(); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		marks, err := stg.ReachableMarkings(n, stg.DefaultStateLimit)
		if err != nil {
			t.Fatal(err)
		}
		m := sp.Manager()
		vars := sp.StateVars()
		for sig := range n.Signals {
			for _, v := range []bool{false, true} {
				set := sp.ValueBDD(sig, v)
				// Cardinality must match the explicit count...
				want := uint64(0)
				for s := 0; s < g.NumStates(); s++ {
					if g.Value(s, sig) == v {
						want++
					}
				}
				if got := m.SatCountVars(set, vars); got != want {
					t.Fatalf("%s: |%s=%v| symbolic %d, explicit %d", e.Name, n.Signals[sig], v, got, want)
				}
				// ...and each explicit state's marking must sit in the
				// right value set.
				for s, row := range marks {
					assign := make([]bool, 2*len(row))
					for p, b := range row {
						assign[vars[p]] = b
					}
					if m.Eval(set, assign) != (g.Value(s, sig) == v) {
						t.Fatalf("%s: state %d misclassified for %s=%v", e.Name, s, n.Signals[sig], v)
					}
				}
			}
		}
	}
}

func TestSymbolicExcitedMatchesExplicit(t *testing.T) {
	for _, e := range benchdata.Table1 {
		n := e.STG()
		g, err := stg.BuildSG(n)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := stg.NewSymbolicSpace(n)
		if err != nil {
			t.Fatal(err)
		}
		m := sp.Manager()
		for sig := range n.Signals {
			for _, d := range []int{+1, -1} {
				want := uint64(0)
				for s := 0; s < g.NumStates(); s++ {
					for _, ed := range g.States[s].Succ {
						if ed.Signal == sig && int(ed.Dir) == d {
							want++
							break
						}
					}
				}
				if got := m.SatCountVars(sp.ExcitedBDD(sig, d), sp.StateVars()); got != want {
					t.Fatalf("%s: |excited %s %+d| symbolic %d, explicit %d", e.Name, n.Signals[sig], d, got, want)
				}
			}
		}
	}
}

func TestSymbolicRunKeepsCacheBounded(t *testing.T) {
	// Regression for the unbounded op-cache: a long symbolic run under a
	// tight limit must reset instead of growing without bound.
	sp, err := stg.NewSymbolicSpace(benchdata.GenParallelizer(14))
	if err != nil {
		t.Fatal(err)
	}
	const limit = 1 << 10
	sp.Manager().SetCacheLimit(limit)
	if err := sp.ComputeValues(); err != nil {
		t.Fatal(err)
	}
	if got := sp.Manager().CacheLen(); got > limit {
		t.Fatalf("op cache has %d entries past the %d limit", got, limit)
	}
	if sp.Manager().Stats().CacheResets == 0 {
		t.Fatal("expected cache resets under a tight limit")
	}
}
