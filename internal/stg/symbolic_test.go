package stg_test

import (
	"strings"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/stg"
)

func TestSymbolicMatchesExplicitOnFixtures(t *testing.T) {
	for _, src := range []string{handshakeG, diamondG, choiceG} {
		n := stg.MustParse(src)
		g, err := stg.BuildSG(n)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := stg.SymbolicReachability(n)
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		if rep.States != uint64(g.NumStates()) {
			t.Errorf("%s: symbolic %d states, explicit %d", n.Name, rep.States, g.NumStates())
		}
	}
}

func TestSymbolicMatchesExplicitOnTable1(t *testing.T) {
	for _, e := range benchdata.Table1 {
		n := e.STG()
		g, err := stg.BuildSG(n)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := stg.SymbolicReachability(n)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if rep.States != uint64(g.NumStates()) {
			t.Errorf("%s: symbolic %d states, explicit %d", e.Name, rep.States, g.NumStates())
		}
		if rep.Iters == 0 || rep.BDDNodes == 0 {
			t.Errorf("%s: degenerate report %+v", e.Name, rep)
		}
	}
}

func TestSymbolicScalesOnWideFork(t *testing.T) {
	// A 18-way fork has 2·2^18 = 524288 markings: far beyond comfortable
	// explicit exploration, trivial symbolically.
	n := benchdata.GenParallelizer(18)
	rep, err := stg.SymbolicReachability(n)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(2) << 18; rep.States != want {
		t.Fatalf("fork18: %d states, want %d", rep.States, want)
	}
	// The reachable set of a fork is almost a product form: its BDD is
	// tiny even though it encodes half a million markings.
	if rep.FinalSize > 500 {
		t.Errorf("reachable-set BDD has %d nodes, expected a compact form", rep.FinalSize)
	}
}

func TestSymbolicDetectsUnsafe(t *testing.T) {
	src := `
.model unsafe
.inputs a
.outputs b
.graph
p a+
a+ q
b+ q
r b+
a- p
q a-
.marking { p r q }
.end
`
	n := stg.MustParse(src)
	_, err := stg.SymbolicReachability(n)
	if err == nil || !strings.Contains(err.Error(), "1-safe") {
		t.Fatalf("unsafe net must be reported, got %v", err)
	}
}

func TestSymbolicMatchesRandomSpecs(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		spec := benchdata.GenRandomSpec(seed, 4)
		g, err := stg.BuildSG(spec.Net)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := stg.SymbolicReachability(spec.Net)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.States != uint64(g.NumStates()) {
			t.Errorf("seed %d: symbolic %d, explicit %d", seed, rep.States, g.NumStates())
		}
	}
}
