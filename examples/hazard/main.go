// Hazard walkthrough: the paper's Example 2 (Figure 4), end to end.
//
// The specification is persistent and every excitation region has a
// correct single-cube cover — the conditions of the earlier gate-level
// methods — yet the straightforward implementation
//
//	t = c'd,  b = a + t
//
// is hazardous: entering ER(+b,2) starts the AND gate t switching, but
// if its delay is large the input a fires first, the OR gate b rises
// through the other term, and t's excitation is later withdrawn without
// ever being acknowledged. This program demonstrates the hazard with the
// speed-independence verifier, shows the Monotonous Cover diagnosis
// (the cube `a` of ER(+b,1) covers state 10*01 inside ER(+b,2)), and
// repairs the specification with one inserted state signal.
//
// Run with:
//
//	go run ./examples/hazard
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/synth"
	"repro/internal/verify"
)

func main() {
	g := benchdata.Fig4SG()
	fmt.Println("specification (Figure 4 of the paper):")
	fmt.Print(g.Dump())

	fmt.Println("\n-- step 1: the spec looks innocent --")
	fmt.Printf("persistent: %v, CSC: %v, output semi-modular: %v\n",
		g.Persistent(), g.CSC(), g.OutputSemiModular())

	fmt.Println("\n-- step 2: Monotonous Cover analysis finds the flaw --")
	rep := core.NewAnalyzer(g).CheckGraph()
	for _, v := range rep.Violations() {
		fmt.Println(v.Describe(g))
	}

	fmt.Println("\n-- step 3: the correct-cover baseline is hazardous --")
	nl, err := baseline.Synthesize(g, netlist.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline netlist:\n%s", nl)
	res := verify.Check(nl, g)
	fmt.Print(res)
	if res.OK() {
		log.Fatal("expected a hazard!")
	}

	fmt.Println("\n-- step 4: MC synthesis repairs it with one state signal --")
	srep, err := synth.FromGraph(g, synth.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted: %v (%d → %d states)\n",
		srep.AddedSignals, srep.Spec.NumStates(), srep.Final.NumStates())
	fmt.Printf("repaired netlist (%s):\n%s", srep.Stats, srep.Netlist)
	fmt.Printf("verification: %s\n", srep.Verify)
}
