// Quickstart: synthesize a speed-independent circuit from a Signal
// Transition Graph with the Monotonous Cover method.
//
// The example is Martin's D-element — a passive handshake (r1/a1)
// enclosing an active one (r2/a2) — whose state graph has the textbook
// state-coding conflict: after a2- the interface repeats the code of the
// state after r1+. MC synthesis detects this as a cover-cube violation,
// inserts one state signal by SAT-based state assignment, emits the
// standard C-element implementation, and verifies it hazard-free.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/synth"
)

const dElement = `
.model Delement
.inputs r1 a2
.outputs a1 r2
.graph
r1+ r2+
r2+ a2+
a2+ r2-
r2- a2-
a2- a1+
a1+ r1-
r1- a1-
a1- r1+
.marking { <a1-,r1+> }
.end
`

func main() {
	// The one-call pipeline: STG → state graph → MC analysis → state
	// signal insertion → standard C-implementation → SI verification.
	rep, err := synth.FromSTGSource(dElement, synth.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())

	fmt.Println("\n-- what happened --")
	fmt.Printf("The specification has %d states; its interface repeats a binary code\n", rep.Spec.NumStates())
	fmt.Printf("with different outputs excited, so no cover cube can separate the two\n")
	fmt.Printf("contexts. The synthesizer inserted %d state signal(s) (%v), giving a\n",
		len(rep.AddedSignals), rep.AddedSignals)
	fmt.Printf("%d-state graph that satisfies the Monotonous Cover requirement.\n", rep.Final.NumStates())
	fmt.Printf("The circuit uses %d AND, %d OR gates and %d latches and verified\n",
		rep.Stats.Ands, rep.Stats.Ors, rep.Stats.Latches)
	fmt.Printf("speed-independent over %d composed states.\n", rep.Verify.States)
}
