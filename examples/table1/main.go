// Table-1 sweep: run the paper's Section-VII benchmark suite through the
// full synthesis pipeline and print the measured MC-reduction table next
// to the published numbers.
//
// Run with:
//
//	go run ./examples/table1
package main

import (
	"fmt"
	"log"

	"repro/internal/paper"
)

func main() {
	rows, err := paper.RunTable1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(paper.FormatTable1(rows))

	match := 0
	for _, r := range rows {
		if r.Added == r.PaperAdded && r.Verified {
			match++
		}
	}
	fmt.Printf("\n%d/%d benchmarks match the paper's inserted-signal counts and verify\n",
		match, len(rows))
	fmt.Println("(the paper reports all nine completing within a 5-minute timeout on a DEC 5000)")
}
