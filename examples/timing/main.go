// Timing study: simulate synthesized circuits under random gate delays,
// compare the cycle time of the C-element and RS-latch implementations,
// and optionally dump a VCD waveform for a standard viewer.
//
// Run with:
//
//	go run ./examples/timing            # cycle-time comparison
//	go run ./examples/timing -vcd out.vcd
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/benchdata"
	"repro/internal/sim"
	"repro/internal/stg"
	"repro/internal/synth"
)

func main() {
	vcdPath := flag.String("vcd", "", "write a VCD waveform of one run to this file")
	bench := flag.String("bench", "Delement", "Table-1 benchmark to simulate")
	flag.Parse()

	e, ok := benchdata.Table1ByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	g, err := stg.BuildSG(e.STG())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s: mean handshake cycle time over 20 random delay assignments\n", e.Name)
	for _, mode := range []struct {
		name string
		rs   bool
	}{{"standard C-implementation ", false}, {"standard RS-implementation", true}} {
		rep, err := synth.FromGraph(g, synth.Options{RS: mode.rs, SkipVerify: true})
		if err != nil {
			log.Fatal(err)
		}
		var total, cycles float64
		for seed := int64(0); seed < 20; seed++ {
			res := sim.Run(rep.Netlist, rep.Final, sim.Config{Seed: seed, MaxEvents: 4000})
			if !res.OK() {
				log.Fatalf("%s seed %d: %s", mode.name, seed, res)
			}
			total += res.EndTime
			cycles += float64(res.Cycles)
		}
		fmt.Printf("  %s: %6.1f time units/cycle (%s)\n", mode.name, total/cycles, rep.Stats)
	}

	if *vcdPath != "" {
		rep, err := synth.FromGraph(g, synth.Options{SkipVerify: true})
		if err != nil {
			log.Fatal(err)
		}
		names := make([]string, rep.Netlist.NumNets())
		for i, n := range rep.Netlist.Nets {
			names[i] = n.Name
		}
		wf := sim.NewWaveform(names)
		res := sim.Run(rep.Netlist, rep.Final, sim.Config{Seed: 1, MaxEvents: 600, Waveform: wf})
		if !res.OK() {
			log.Fatalf("simulation failed: %s", res)
		}
		f, err := os.Create(*vcdPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := wf.WriteVCD(f, e.Name); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d events, t=%.1f)\n", *vcdPath, res.Events, res.EndTime)
	}
}
