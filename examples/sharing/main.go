// Gate sharing (Section VI): two outputs with identical excitation
// conditions share their AND terms under the generalized Monotonous
// Cover requirement.
//
// The specification is a two-way fork: outputs y and z both rise after
// a+ ∧ b+ and both fall after a- ∧ b-, so Sy = Sz = ab and Ry = Rz =
// a'b'. Private AND gates per region would need four gates; Theorem 5
// allows one gate per shared cube — two gates — and the shared circuit
// still verifies speed-independent.
//
// Run with:
//
//	go run ./examples/sharing
package main

import (
	"fmt"
	"log"

	"repro/internal/synth"
)

const fork = `
.model fork
.inputs a b
.outputs y z
.graph
a+ y+ z+
b+ y+ z+
y+ a- b-
z+ a- b-
a- y- z-
b- y- z-
y- a+ b+
z- a+ b+
.marking { <y-,a+> <y-,b+> <z-,a+> <z-,b+> }
.end
`

func main() {
	private, err := synth.FromSTGSource(fork, synth.Options{})
	if err != nil {
		log.Fatal(err)
	}
	shared, err := synth.FromSTGSource(fork, synth.Options{Share: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- private AND gates (one per excitation region) --")
	fmt.Printf("%s\n%s", private.Stats, private.Netlist)
	fmt.Printf("verification: %s\n\n", private.Verify)

	fmt.Println("-- shared AND gates (generalized MC, Section VI) --")
	fmt.Printf("%s (saved %d AND terms)\n%s", shared.Stats, shared.SharedSaved, shared.Netlist)
	fmt.Printf("verification: %s\n", shared.Verify)

	if shared.Stats.Ands >= private.Stats.Ands {
		fmt.Println("\nnote: sharing found no gain on this run")
	} else {
		fmt.Printf("\n%d AND gates instead of %d, still hazard-free (Theorem 5)\n",
			shared.Stats.Ands, private.Stats.Ands)
	}
}
