.model berkel2
.inputs a b
.outputs x y
.graph
a+ x+
x+ b+
b+ b-
b- a-
a- x-
x- a+/2
a+/2 y+
y+ a-/2
a-/2 y-
y- a+
.marking { <y-,a+> }
.end
