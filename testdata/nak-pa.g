.model nak-pa
.inputs r ai ni d
.outputs q a b c e
.graph
r+ q+
q+ pc
ai+ e+
ni+ b+
e+ a+
a+ d+
d+ q-
q- ai-
ai- e-
e- d-
d- r-
r- a-
a- p0
b+ q-/2
q-/2 ni-
ni- b-
b- c+
c+ c-
c- q+/2
q+/2 ai+/2
ai+/2 e+/2
e+/2 a+/2
a+/2 d+/2
d+/2 q-/3
q-/3 ai-/2
ai-/2 e-/2
e-/2 d-/2
d-/2 r-/2
r-/2 a-/2
a-/2 p0
p0 r+
pc ai+ ni+
.marking { p0 }
.end
