.model berkel3
.inputs a b
.outputs x y
.graph
a+ x+
x+ a-
a- x-
x- a+/2
a+/2 b+
b+ y+
y+ a-/2
a-/2 y-
y- a+/3
a+/3 x+/2
x+/2 a-/3
a-/3 x-/2
x-/2 a+/4
a+/4 b-
b- y+/2
y+/2 a-/4
a-/4 y-/2
y-/2 a+
.marking { <y-/2,a+> }
.end
