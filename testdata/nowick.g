.model nowick
.inputs a b c
.outputs x y
.graph
a+ x+
x+ b+
b+ b-
b- a-
a- x-
x- a+/2
a+/2 y+
y+ c+
c+ c-
c- a-/2
a-/2 y-
y- a+
.marking { <y-,a+> }
.end
