.model luciano
.inputs a
.outputs x y
.graph
a+ x+
x+ a-
a- x-
x- a+/2
a+/2 y+
y+ a-/2
a-/2 y-
y- a+
.marking { <y-,a+> }
.end
