.model Delement
.inputs r1 a2
.outputs a1 r2
.graph
r1+ r2+
r2+ a2+
a2+ r2-
r2- a2-
a2- a1+
a1+ r1-
r1- a1-
a1- r1+
.marking { <a1-,r1+> }
.end
