.model mp-forward-pkt
.inputs r x y
.outputs p q u v
.graph
r+ p+
p+ x+
x+ q+
q+ y+
y+ u+ v+
u+ r-
v+ r-
r- p-
p- x-
x- q-
q- y-
y- u- v-
u- r+
v- r+
.marking { <u-,r+> <v-,r+> }
.end
