// Command loadgen drives a running mcsyn synthesis server (mcsyn
// -serve) open-loop and reports latency percentiles per phase, writing
// a bench.LoadReport that benchdiff -loadgen can gate on.
//
//	loadgen -addr http://127.0.0.1:8377 -rps 50 -duration 5s -json load.json
//
// Open-loop means requests fire on the target schedule regardless of
// completions — the driver never waits for one request before sending
// the next, so a slow server accumulates in-flight work and the
// latency distribution shows the queueing it caused (a closed-loop
// driver would hide it by self-throttling).
//
// Phases (selected with -phases, comma-separated, run in order):
//
//	cold   every request is a spec the server has never seen
//	       (deterministic random handshake specs derived from -seed)
//	warm   round-robin over the nine Table-1 specs, primed untimed
//	       first, so every stage of every request is a cache hit
//	mixed  alternates warm Table-1 replays and fresh random specs
//
// With -smoke the driver instead runs the CI correctness protocol: it
// submits all Table-1 specs twice, asserts the second pass resolved
// every stage from cache with digests identical to the first, and —
// when -journal names the server's journal file — cross-checks every
// digest against the journal's reconstructed run_end records. Exit
// status 1 on any mismatch.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/benchdata"
	"repro/internal/obs/journal"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8377", "server base URL")
		rps      = flag.Float64("rps", 50, "target requests per second per phase")
		duration = flag.Duration("duration", 5*time.Second, "measured duration per phase")
		phases   = flag.String("phases", "cold,warm,mixed", "comma-separated phase list")
		seed     = flag.Int64("seed", 1, "base seed for the random spec pool")
		size     = flag.Int("size", 6, "random spec size (handshake components)")
		jsonOut  = flag.String("json", "", "write the bench.LoadReport to this path")
		smoke    = flag.Bool("smoke", false, "run the CI smoke protocol instead of load phases")
		jpath    = flag.String("journal", "", "smoke mode: verify digests against this server journal")
	)
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Minute}
	if *smoke {
		if err := runSmoke(client, *addr, *jpath); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: smoke:", err)
			os.Exit(1)
		}
		fmt.Println("smoke: ok")
		return
	}

	rep := &bench.LoadReport{
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		CPUModel:     cpuModel(),
		GeneratedUTC: time.Now().UTC().Format(time.RFC3339),
		Server:       *addr,
		Specs:        len(benchdata.Table1),
	}
	coldSeq := *seed
	for _, name := range strings.Split(*phases, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		ph, err := runPhase(client, *addr, name, *rps, *duration, &coldSeq, *size)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: phase %s: %v\n", name, err)
			os.Exit(1)
		}
		rep.Phases = append(rep.Phases, ph)
		fmt.Printf("%-6s  %6.1f req/s achieved  p50 %s  p95 %s  p99 %s  (%d requests, %d rejected, %d errors)\n",
			name, ph.AchievedRPS, us(ph.P50Us), us(ph.P95Us), us(ph.P99Us), ph.Requests, ph.Rejected, ph.Errors)
	}
	if *jsonOut != "" {
		if err := rep.WriteFile(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
	}
}

func us(v int64) string { return (time.Duration(v) * time.Microsecond).String() }

// nextSpec returns the phase's i-th request payload.
//
// Cold requests cycle the Table-1 sources with the model name rewritten
// to a sequence-unique one: the content-addressed cache keys on the
// canonical source, so every request misses every stage, yet the
// synthesis cost is exactly a real benchmark's — not a toy spec's.
// Warm requests replay the Table-1 set verbatim. Mixed alternates warm
// replays with fresh random handshake specs from the benchdata
// generator, the "new design arriving amid regression reruns" shape.
func nextSpec(phase string, i int, coldSeq *int64, size int) serve.Request {
	warm := func(n int) serve.Request {
		e := benchdata.Table1[n%len(benchdata.Table1)]
		return serve.Request{Name: e.Name, Source: e.Source}
	}
	cold := func() serve.Request {
		*coldSeq++
		e := benchdata.Table1[int(*coldSeq)%len(benchdata.Table1)]
		name := fmt.Sprintf("%s__c%d", e.Name, *coldSeq)
		return serve.Request{Name: name, Source: strings.Replace(e.Source, e.Name, name, 1)}
	}
	switch phase {
	case "warm":
		return warm(i)
	case "mixed":
		if i%2 == 0 {
			return warm(i / 2)
		}
		*coldSeq++
		rs := benchdata.GenRandomSpec(*coldSeq, size)
		return serve.Request{Name: rs.Net.Name, Source: rs.Net.Format()}
	default: // cold
		return cold()
	}
}

// runPhase fires requests open-loop at the target rate for the given
// duration and folds the completions into one LoadPhase.
func runPhase(client *http.Client, addr, name string, rps float64, d time.Duration, coldSeq *int64, size int) (bench.LoadPhase, error) {
	if rps <= 0 {
		return bench.LoadPhase{}, fmt.Errorf("rps must be positive")
	}
	if name == "warm" || name == "mixed" {
		// Prime the cache untimed so warm requests measure pure cache
		// latency rather than a first-pass synthesis.
		for _, e := range benchdata.Table1 {
			if _, _, err := post(client, addr, serve.Request{Name: e.Name, Source: e.Source}); err != nil {
				return bench.LoadPhase{}, fmt.Errorf("prime %s: %w", e.Name, err)
			}
		}
	}

	var (
		mu       sync.Mutex
		latUs    []int64
		rejected int
		errors   int
		wg       sync.WaitGroup
	)
	interval := time.Duration(float64(time.Second) / rps)
	deadline := time.Now().Add(d)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := 0; time.Now().Before(deadline); i++ {
		req := nextSpec(name, i, coldSeq, size)
		wg.Add(1)
		go func() { //reprolint:go open-loop load driver: requests must not wait for each other
			defer wg.Done()
			start := time.Now()
			status, _, err := post(client, addr, req)
			lat := time.Since(start).Microseconds()
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				errors++
			case status == http.StatusTooManyRequests:
				rejected++
			case status != http.StatusOK:
				errors++
			default:
				latUs = append(latUs, lat)
			}
		}()
		<-tick.C
	}
	wg.Wait()
	return bench.SummarizePhase(name, rps, d.Seconds(), latUs, rejected, errors), nil
}

// post submits one spec with ?wait=1 and returns the HTTP status and
// decoded entry.
func post(client *http.Client, addr string, req serve.Request) (int, *synthEntry, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Post(addr+"/synth?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	var e synthEntry
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &e); err != nil {
			return resp.StatusCode, nil, fmt.Errorf("bad response: %w", err)
		}
	}
	return resp.StatusCode, &e, nil
}

// synthEntry mirrors the server's POST /synth response element.
type synthEntry struct {
	Job    string         `json:"job"`
	Result *serve.Result  `json:"result"`
	Trace  *serve.Trace   `json:"trace"`
	Extra  map[string]any `json:"-"`
}

// runSmoke is the CI correctness protocol: two passes over Table-1,
// second pass must be all-hit with identical digests; optionally
// cross-checked against the server's journal.
func runSmoke(client *http.Client, addr, jpath string) error {
	type outcome struct{ digest, verdict string }
	pass := func() (map[string]outcome, map[string]*serve.Trace, error) {
		digests := map[string]outcome{}
		traces := map[string]*serve.Trace{}
		for _, e := range benchdata.Table1 {
			status, ent, err := post(client, addr, serve.Request{Name: e.Name, Source: e.Source})
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %w", e.Name, err)
			}
			if status != http.StatusOK || ent.Result == nil {
				return nil, nil, fmt.Errorf("%s: status %d, no result", e.Name, status)
			}
			if ent.Result.Err != "" {
				return nil, nil, fmt.Errorf("%s: %s", e.Name, ent.Result.Err)
			}
			digests[e.Name] = outcome{ent.Result.NetlistSHA, ent.Result.Verdict}
			traces[e.Name] = ent.Trace
		}
		return digests, traces, nil
	}

	first, _, err := pass()
	if err != nil {
		return fmt.Errorf("pass 1: %w", err)
	}
	second, traces, err := pass()
	if err != nil {
		return fmt.Errorf("pass 2: %w", err)
	}
	for _, e := range benchdata.Table1 {
		if first[e.Name] != second[e.Name] {
			return fmt.Errorf("%s: cached result diverged: %+v vs %+v", e.Name, first[e.Name], second[e.Name])
		}
		tr := traces[e.Name]
		if tr == nil || len(tr.Computed) > 0 || len(tr.Hits) != len(serve.Stages) {
			return fmt.Errorf("%s: second pass not fully cached: %+v", e.Name, tr)
		}
		fmt.Printf("%-16s %s  (pass 2: %d/%d stages from cache)\n", e.Name, first[e.Name].digest, len(tr.Hits), len(serve.Stages))
	}

	if jpath == "" {
		return nil
	}
	evs, err := journal.ReadFile(jpath)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	fromJournal := map[string]string{}
	for _, run := range journal.Reconstruct(evs) {
		if run.Complete {
			fromJournal[run.Spec] = run.NetlistSHA
		}
	}
	for _, e := range benchdata.Table1 {
		jd, ok := fromJournal[e.Name]
		if !ok {
			return fmt.Errorf("%s: no completed run in journal %s", e.Name, jpath)
		}
		if jd != first[e.Name].digest {
			return fmt.Errorf("%s: journal digest %s != response digest %s", e.Name, jd, first[e.Name].digest)
		}
	}
	fmt.Printf("journal: %d runs cross-checked against %s\n", len(benchdata.Table1), jpath)
	return nil
}

// cpuModel best-effort identifies the host CPU (Linux only), matching
// bench.Report's fingerprint field.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}
