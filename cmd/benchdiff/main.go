// Command benchdiff compares two BENCH_table1.json reports and gates
// on regressions — a dependency-free benchstat for this repo's
// per-stage pipeline benchmarks.
//
//	benchdiff [flags] old.json[,old2.json,...] new.json[,new2.json,...]
//
// Comma-separated lists on either side are min-reduced before the
// comparison (run the suite several times; the per-stage minimum is
// the noise-rejecting estimate). Exit status: 0 when no stage exceeds
// its budget, 1 on at least one regression, 2 on usage or
// incomparable-report errors (including a cross-machine fingerprint
// mismatch without -allow-cross-machine).
//
// With -loadgen the two arguments are bench.LoadReport files from
// cmd/loadgen instead, and the gate is each shared phase's p95 latency
// under the same noise/budget discipline — per-phase budgets come from
// -stage-budget entries named load_cold, load_warm, load_mixed. This
// is how warm-cache serving latency regressions fail CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		noise       = flag.Float64("noise", 0.05, "relative delta treated as jitter, never a verdict")
		budget      = flag.Float64("budget", 0.10, "default relative time/op growth allowed per stage")
		stageBudget = flag.String("stage-budget", "", "per-stage time budgets overriding -budget, e.g. repair=0.25,verify=0.15")
		allocBudget = flag.Float64("alloc-budget", 0.05, "relative allocs/op growth allowed (machine-independent gate)")
		allowCross  = flag.Bool("allow-cross-machine", false, "compare despite differing machine fingerprints")
		all         = flag.Bool("all", false, "print within-noise rows too")
		jsonOut     = flag.Bool("json", false, "emit the full diff result as JSON instead of a table")
		loadgen     = flag.Bool("loadgen", false, "compare bench.LoadReport files (phase p95 gate) instead of stage reports")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff [flags] old.json[,...] new.json[,...]\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	opts := bench.DiffOptions{
		Noise:             *noise,
		TimeBudget:        *budget,
		AllocBudget:       *allocBudget,
		AllowCrossMachine: *allowCross,
	}
	var err error
	if opts.StageBudgets, err = parseStageBudgets(*stageBudget); err != nil {
		fatal(err)
	}

	if *loadgen {
		diffLoad(flag.Arg(0), flag.Arg(1), opts, *jsonOut)
		return
	}

	oldR, err := loadMin(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newR, err := loadMin(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	res, err := bench.Diff(oldR, newR, opts)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, res); err != nil {
			fatal(err)
		}
	} else {
		res.WriteTable(os.Stdout, *all)
	}
	if res.Regressions > 0 {
		os.Exit(1)
	}
}

// diffLoad runs the -loadgen comparison and exits with the gate's
// status.
func diffLoad(oldPath, newPath string, opts bench.DiffOptions, jsonOut bool) {
	oldR, err := bench.ReadLoadReport(oldPath)
	if err != nil {
		fatal(err)
	}
	newR, err := bench.ReadLoadReport(newPath)
	if err != nil {
		fatal(err)
	}
	res, err := bench.LoadDiff(oldR, newR, opts)
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", data)
	} else {
		res.WriteTable(os.Stdout)
	}
	if res.Regressions > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// loadMin reads a comma-separated report list and min-reduces it.
func loadMin(arg string) (*bench.Report, error) {
	var runs []*bench.Report
	for _, path := range strings.Split(arg, ",") {
		if path == "" {
			continue
		}
		r, err := bench.ReadReport(path)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("benchdiff: no reports in %q", arg)
	}
	return bench.MinOfRuns(runs), nil
}

func parseStageBudgets(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("benchdiff: bad -stage-budget entry %q (want stage=0.25)", kv)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad budget in %q: %v", kv, err)
		}
		out[strings.TrimSpace(k)] = f
	}
	return out, nil
}

func writeJSON(w *os.File, res *bench.DiffResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
