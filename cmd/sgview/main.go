// Command sgview analyzes a Signal Transition Graph at the state-graph
// level: it prints the reachable state graph with the paper's pictorial
// codes, the behavioural property report (semi-modularity,
// distributivity, persistency, CSC), the excitation/quiescent region
// decomposition, and the Monotonous Cover report with per-region cubes
// or violations.
//
// Usage:
//
//	sgview [flags] spec.g
//	sgview [flags] -bench name
//
// Flags:
//
//	-regions signal   show the region decomposition of one signal
//	-dot              print the state graph in Graphviz syntax
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/sg"
	"repro/internal/stg"
)

func main() {
	bench := flag.String("bench", "", "analyze a built-in Table-1 benchmark")
	regions := flag.String("regions", "", "show the region decomposition of this signal")
	dot := flag.Bool("dot", false, "print the state graph in Graphviz syntax")
	structure := flag.Bool("structure", false, "print the Petri-net structural analysis")
	symbolic := flag.Bool("symbolic", false, "count reachable markings symbolically (BDD)")
	flag.Parse()

	var net *stg.STG
	switch {
	case *bench != "":
		e, ok := benchdata.Table1ByName(*bench)
		if !ok {
			fatalf("unknown benchmark %q", *bench)
		}
		net = e.STG()
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		net, err = stg.Parse(string(data))
		if err != nil {
			fatalf("%v", err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *structure {
		fmt.Println(net.Structure())
		return
	}
	if *symbolic {
		rep, err := stg.SymbolicReachability(net)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("reachable markings: %d (in %d image iterations, reachable-set BDD %d nodes)\n",
			rep.States, rep.Iters, rep.FinalSize)
		return
	}

	g, err := stg.BuildSG(net)
	if err != nil {
		fatalf("%v", err)
	}
	if *dot {
		fmt.Print(g.DOT())
		return
	}
	fmt.Print(g.Dump())
	fmt.Println()
	fmt.Println(g.Check())
	fmt.Println()

	a := core.NewAnalyzer(g)
	if *regions != "" {
		sig := g.SignalIndex(*regions)
		if sig < 0 {
			fatalf("unknown signal %q", *regions)
		}
		printRegions(g, a, sig)
		return
	}
	fmt.Println("MC report:")
	fmt.Print(a.CheckGraph())
}

func printRegions(g *sg.Graph, a *core.Analyzer, sig int) {
	regs := a.Regs[sig]
	for _, er := range regs.ER {
		fmt.Printf("%s:", g.ERLabel(er))
		for _, s := range er.States {
			fmt.Printf(" s%d(%s)", s, g.CodeString(s))
		}
		fmt.Printf("\n  unique entry: %v", er.UniqueEntry())
		if er.UniqueEntry() {
			fmt.Printf(", u_min = %s", g.CodeString(er.MinState()))
		}
		fmt.Printf("\n  triggers:")
		for _, tr := range g.Triggers(er) {
			fmt.Printf(" %s%s", g.Signals[tr.Signal], tr.Dir)
		}
		fmt.Printf("\n  cover cube: %s\n", a.CoverCube(er).StringNamed(g.Signals))
	}
	for _, qr := range regs.QR {
		fmt.Printf("%s:", g.QRLabel(qr))
		for _, s := range qr.States {
			fmt.Printf(" s%d", s)
		}
		fmt.Println()
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sgview: "+format+"\n", args...)
	os.Exit(1)
}
