// Command reprolint is the repository's invariant checker: a
// multichecker running the internal/analysis suite (determinism,
// hotalloc, obssafe, parpool) over the packages matching its
// arguments.
//
//	go run ./cmd/reprolint ./...
//
// It prints one line per finding (file:line:col: message (analyzer))
// and exits 1 when anything is reported, 0 on a clean run. CI runs it
// on every push; see the "Static analysis & invariants" section of
// DESIGN.md for the invariant each analyzer enforces and its escape
// hatch.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/lint"
)

func main() {
	doc := flag.Bool("doc", false, "print each analyzer's documentation and exit")
	flag.Parse()
	if *doc {
		for _, sa := range analysis.Suite() {
			fmt.Printf("%s: %s\n\n", sa.Analyzer.Name, sa.Analyzer.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(pkgs, analysis.Suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "reprolint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
