// Command reprolint is the repository's invariant checker: a
// multichecker running the internal/analysis suite (determinism,
// determinism2, hotalloc, obssafe, parpool, cachekey, lockdiscipline)
// over the packages matching its arguments.
//
//	go run ./cmd/reprolint ./...
//	go run ./cmd/reprolint -factdir /tmp/facts ./...
//
// It prints one line per finding (file:line:col: message (analyzer))
// and exits 1 when anything is reported, 0 on a clean run. With
// -factdir it additionally persists each interprocedural analyzer's
// serialized per-package facts — one file per (analyzer, package),
// byte-identical across runs. CI runs it on every push; see the
// "Static analysis & invariants" section of DESIGN.md for the
// invariant each analyzer enforces and its escape hatch.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/lint"
)

func main() {
	doc := flag.Bool("doc", false, "print each analyzer's documentation and exit")
	factdir := flag.String("factdir", "", "write each interprocedural analyzer's per-package fact files to this directory")
	flag.Parse()
	if *doc {
		for _, sa := range analysis.Suite() {
			fmt.Printf("%s: %s\n\n", sa.Analyzer.Name, sa.Analyzer.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	suite := analysis.Suite()
	findings, store, err := lint.RunFacts(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	if *factdir != "" {
		if err := writeFacts(*factdir, suite, store); err != nil {
			fmt.Fprintln(os.Stderr, "reprolint:", err)
			os.Exit(2)
		}
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "reprolint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

// writeFacts persists one fact file per (analyzer, package) as
// <dir>/<analyzer>/<package-with-slashes-escaped>.json. The bytes are
// the store's canonical serialization: running reprolint twice over the
// same tree writes identical files.
func writeFacts(dir string, suite []lint.ScopedAnalyzer, store *lint.FactStore) error {
	for _, sa := range suite {
		if !sa.Analyzer.Interprocedural() {
			continue
		}
		adir := filepath.Join(dir, sa.Analyzer.Name)
		if err := os.MkdirAll(adir, 0o755); err != nil {
			return err
		}
		for _, pkgPath := range store.Packages(sa.Analyzer.Name) {
			name := strings.ReplaceAll(pkgPath, "/", "__") + ".json"
			data := store.Encoded(sa.Analyzer.Name, pkgPath)
			if err := os.WriteFile(filepath.Join(adir, name), data, 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
