// Command mcsyn synthesizes a speed-independent circuit from a Signal
// Transition Graph using the Monotonous Cover method: it builds the
// state graph, checks the behavioural preconditions, inserts state
// signals via SAT-based state assignment until the MC requirement holds,
// emits the standard C- or RS-implementation, and verifies the result
// hazard-free against the (transformed) specification.
//
// Usage:
//
//	mcsyn [flags] spec.g        synthesize an STG file
//	mcsyn [flags] -bench name   synthesize a built-in Table-1 benchmark
//	mcsyn [flags] -table1       synthesize all nine Table-1 benchmarks
//	mcsyn -list                 list the built-in benchmarks
//
// Flags:
//
//	-rs         emit the standard RS-implementation (default: C-elements)
//	-engine E   analysis engine: explicit (default), symbolic, or auto
//	            (auto probes the state count and switches to symbolic
//	            past a threshold). Symbolic synthesis produces netlists
//	            byte-identical to explicit; on specs too large for the
//	            explicit engine it degrades to an analysis-only report
//	            (reachable states + existence-only MC check).
//	-share      enable Section-VI generalized-MC gate sharing
//	-baseline   use the correct-cover baseline instead of MC synthesis
//	-dot        print the final state graph in Graphviz syntax
//	-quiet      print only the verdict line
//	-parallel N bound the analysis/benchmark worker pools (0 = GOMAXPROCS,
//	            1 = sequential)
//	-maxmodels N    bound the SAT models enumerated per conflict/strategy
//	                pair during state-signal insertion (0 = default 128)
//	-repair-workers N  bound the repair candidate-scoring pool
//	                (0 = follow -parallel, 1 = sequential)
//	-cpuprofile write a CPU profile to the given file
//	-memprofile write a heap profile at exit to the given file
//	-benchjson  benchmark the Table-1 pipeline stages (parse, reach,
//	            analyze, repair, cover, verify) and write a JSON report
//	-benchtime  per-stage measuring time for -benchjson
//
// Service mode (see DESIGN.md §12):
//
//	-serve a        run the synthesis service on address a: POST /synth
//	                (single or batch, ?wait=1 blocks), GET /job/{id}
//	                (?sse=1 streams progress), GET /result/{digest},
//	                /metrics. Stage results are cached content-addressed
//	                and identical concurrent submissions coalesce.
//	-serve-shards N pipeline worker shards (0 = GOMAXPROCS)
//	-serve-queue N  queued jobs beyond running before 429 backpressure
//	                (0 = 2x shards)
//	-serve-cache N  stage-cache entry cap (0 = 1024)
//
// SIGINT/SIGTERM drain cleanly in every mode: in-flight server jobs
// finish, the ops plane closes, and profiles/journals flush through the
// same once-only path as a normal exit. A second signal terminates
// immediately.
//
// Observability (see the Observability section of README.md):
//
//	-metrics f  write engine counters in Prometheus text format to f
//	-trace f    write a Chrome trace_event JSON (about:tracing/Perfetto)
//	-report f   write a machine-readable run report (JSON) per spec
//	-journal f  append a JSONL flight-recorder journal: every pipeline
//	            event with provenance (spec/netlist sha-256, config,
//	            per-stage wall and allocation counters)
//	-serve-obs a  serve the live ops plane on address a — /metrics,
//	            /progress (SSE event stream), /trace, /debug/pprof/
//	-profile-stages  capture per-stage CPU/alloc profiles; top-N symbol
//	            summaries land in the -report JSON (-profile-top N)
//	-v          structured slog progress logging to stderr
//
// All output files — profiles included — are flushed on every exit
// path, error exits included.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/benchdata"
	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/obshttp"
	"repro/internal/obs/prof"
	"repro/internal/serve"
	"repro/internal/stg"
	"repro/internal/synth"
	"repro/internal/tech"
	"repro/internal/verify"
)

// session owns every output that must be flushed before the process
// exits. os.Exit skips deferred calls, so all exits — fatalf included —
// are routed through exit(), which flushes first; the historical bug
// where `defer pprof.StopCPUProfile()` never ran under fatalf left
// truncated CPU profiles behind.
type session struct {
	once sync.Once

	cpu                                *os.File // active CPU profile, nil when off
	memPath                            string
	metricsPath, tracePath, reportPath string

	o       *obs.Observer
	reports []*obs.RunReport
	jw      *journal.Writer
	srv     *obshttp.Server
	synsrv  *serve.Server
	prof    *prof.Profiler
}

var ses session

// flush writes every pending output exactly once. Failures are reported
// but do not abort the remaining writers.
func (s *session) flush() {
	s.once.Do(func() {
		// The synthesis service drains first: in-flight jobs finish and
		// publish their journal run_end events while the journal writer
		// below is still open.
		if s.synsrv != nil {
			s.synsrv.Close()
		}
		if s.cpu != nil {
			pprof.StopCPUProfile()
			s.cpu.Close()
		}
		if s.memPath != "" {
			if f, err := os.Create(s.memPath); err != nil {
				fmt.Fprintf(os.Stderr, "mcsyn: memprofile: %v\n", err)
			} else {
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "mcsyn: memprofile: %v\n", err)
				}
				f.Close()
			}
		}
		if s.o == nil {
			return
		}
		if s.metricsPath != "" {
			if f, err := os.Create(s.metricsPath); err != nil {
				fmt.Fprintf(os.Stderr, "mcsyn: metrics: %v\n", err)
			} else {
				if err := s.o.Metrics.WritePrometheus(f); err != nil {
					fmt.Fprintf(os.Stderr, "mcsyn: metrics: %v\n", err)
				}
				f.Close()
			}
		}
		if s.tracePath != "" {
			if f, err := os.Create(s.tracePath); err != nil {
				fmt.Fprintf(os.Stderr, "mcsyn: trace: %v\n", err)
			} else {
				if err := s.o.Tracer.WriteChromeTrace(f); err != nil {
					fmt.Fprintf(os.Stderr, "mcsyn: trace: %v\n", err)
				}
				f.Close()
			}
		}
		if s.reportPath != "" && len(s.reports) > 0 {
			var v any = s.reports
			if len(s.reports) == 1 {
				v = s.reports[0]
			}
			if err := obs.WriteJSON(s.reportPath, v); err != nil {
				fmt.Fprintf(os.Stderr, "mcsyn: report: %v\n", err)
			}
		}
		if s.jw != nil {
			if err := s.jw.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "mcsyn: journal: %v\n", err)
			}
		}
		if s.srv != nil {
			s.srv.Close()
		}
	})
}

// begin snapshots the observer ahead of one spec's pipeline — before
// the spec is even parsed, so the parse span lands in the report; the
// returned finish builds the run report from everything recorded since.
func (s *session) begin() (finish func(spec string, fill func(r *obs.RunReport))) {
	if s.o == nil {
		return func(string, func(r *obs.RunReport)) {}
	}
	mark := s.o.Tracer.Mark()
	base := s.o.Metrics.Snapshot()
	return func(spec string, fill func(r *obs.RunReport)) {
		r := s.o.BuildRunReport(spec, mark, base)
		if fill != nil {
			fill(r)
		}
		r.Profiles = s.prof.Take()
		s.reports = append(s.reports, r)
	}
}

// fillSynth copies the verdict fields of a synthesis report.
func fillSynth(r *obs.RunReport, rep *synth.Report, err error) {
	if rep == nil {
		r.Verdict = "error: " + err.Error()
		return
	}
	r.OK = rep.OK()
	r.AddedSignals = rep.AddedSignals
	r.Literals = rep.Stats.Literals
	if rep.Spec != nil {
		r.SpecStates = rep.Spec.NumStates()
	}
	if rep.Final != nil {
		r.FinalStates = rep.Final.NumStates()
	}
	switch {
	case rep.Verify != nil:
		r.Verdict = rep.Verify.String()
		r.ComposedStates = rep.Verify.States
	case err != nil:
		r.Verdict = "error: " + err.Error()
	default:
		r.Verdict = "synthesized (verification skipped)"
	}
	if err != nil {
		r.OK = false
	}
}

// runConfig snapshots the flags that shape one synthesis run for the
// journal's run_start record. Engine is the requested engine ("auto"
// included); the per-spec resolution is visible in the run report.
func runConfig(engineName string, opts synth.Options) journal.RunConfig {
	return journal.RunConfig{
		Engine:        engineName,
		Portfolio:     opts.Repair.Portfolio,
		RepairWorkers: opts.Repair.Workers,
		MaxModels:     opts.Repair.MaxModels,
		Parallel:      opts.Parallel,
		RS:            opts.RS,
		Share:         opts.Share,
	}
}

// journalRunEnd publishes one synthesis outcome's digests to the
// journal sinks (a no-op without sinks).
func journalRunEnd(spec string, rep *synth.Report, err error) {
	if !obs.SinksEnabled() {
		return
	}
	var text, verdict string
	var added int
	var ok bool
	if rep != nil {
		if rep.Netlist != nil {
			text = rep.Netlist.String()
		}
		added = len(rep.AddedSignals)
		ok = rep.OK()
		if rep.Verify != nil {
			verdict = rep.Verify.String()
		} else {
			verdict = "synthesized (verification skipped)"
		}
	}
	if err != nil {
		verdict = "error: " + err.Error()
		ok = false
	}
	journal.PublishRunEnd(spec, text, added, verdict, ok)
}

func main() {
	rs := flag.Bool("rs", false, "emit the standard RS-implementation")
	share := flag.Bool("share", false, "enable generalized-MC gate sharing (Section VI)")
	useBaseline := flag.Bool("baseline", false, "use the correct-cover baseline (no MC repair)")
	benchName := flag.String("bench", "", "synthesize a built-in Table-1 benchmark")
	table1 := flag.Bool("table1", false, "synthesize all nine Table-1 benchmarks")
	list := flag.Bool("list", false, "list built-in benchmarks")
	dot := flag.Bool("dot", false, "print the final state graph in Graphviz syntax")
	quiet := flag.Bool("quiet", false, "print only the verdict line")
	fanin := flag.Int("fanin", 0, "map to a library with this AND/OR fan-in bound (0 = none)")
	inverters := flag.Bool("inverters", false, "map pin bubbles to explicit inverter cells")
	verilog := flag.Bool("verilog", false, "print the implementation as structural Verilog")
	engineName := flag.String("engine", "explicit", "analysis engine: explicit, symbolic, or auto (switches to symbolic past an estimated state count)")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	maxModels := flag.Int("maxmodels", 0, "max SAT models per conflict/strategy pair in repair (0 = default 128)")
	repairWorkers := flag.Int("repair-workers", 0, "repair candidate-scoring pool size (0 = follow -parallel, 1 = sequential)")
	portfolio := flag.Int("portfolio", 0, "SAT portfolio width for repair (0 = auto from -repair-workers, 1 = single solver, max 8); never changes the netlist")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	benchjson := flag.String("benchjson", "", "benchmark the Table-1 pipeline stages and write the JSON report to this file")
	benchtime := flag.Duration("benchtime", 0, "per-stage measuring time for -benchjson (0 = testing default of 1s)")
	metricsOut := flag.String("metrics", "", "write engine metrics in Prometheus text format to this file at exit")
	journalOut := flag.String("journal", "", "append a JSONL flight-recorder journal of every pipeline event to this file")
	serveObs := flag.String("serve-obs", "", "serve the live ops plane (/metrics, /progress SSE, /trace, /debug/pprof) on this address")
	serveAddr := flag.String("serve", "", "run the synthesis service on this address (POST /synth, GET /job/{id}, GET /result/{digest}, /metrics)")
	serveShards := flag.Int("serve-shards", 0, "synthesis service pipeline shards (0 = GOMAXPROCS)")
	serveQueue := flag.Int("serve-queue", 0, "synthesis service queued jobs beyond running before 429 backpressure (0 = 2x shards)")
	serveCache := flag.Int("serve-cache", 0, "synthesis service stage-cache entry cap (0 = 1024)")
	profileStages := flag.Bool("profile-stages", false, "capture per-stage CPU and allocation profiles; top-N symbol summaries land in the -report JSON")
	profileTop := flag.Int("profile-top", 0, "symbols per stage-profile summary (0 = default 5)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON trace to this file at exit")
	reportOut := flag.String("report", "", "write a machine-readable JSON run report to this file at exit")
	verbose := flag.Bool("v", false, "structured progress logging (slog) to stderr")
	flag.Parse()

	ses.memPath = *memprofile
	ses.metricsPath, ses.tracePath, ses.reportPath = *metricsOut, *traceOut, *reportOut
	if *metricsOut != "" || *traceOut != "" || *reportOut != "" || *verbose ||
		*journalOut != "" || *serveObs != "" || *serveAddr != "" || *profileStages {
		var lg *slog.Logger
		if *verbose {
			lg = slog.New(slog.NewTextHandler(os.Stderr, nil))
		}
		ses.o = obs.New(lg)
		obs.Enable(ses.o)
	}
	defer ses.flush()

	// Trap SIGINT/SIGTERM in every mode so the service drains and the
	// once-only flush (profiles, journal, reports) runs before exit —
	// a Ctrl-C previously truncated the journal mid-record, silently
	// because of the Writer's sticky-error path. A second signal gets
	// the default immediate termination.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() { //reprolint:go signal watcher, not a pipeline fan-out; lives for the whole process
		sig := <-sigc
		signal.Stop(sigc)
		fmt.Fprintf(os.Stderr, "mcsyn: received %v; draining and flushing (send again to force quit)\n", sig)
		exit(130)
	}()

	if *journalOut != "" {
		jw, err := journal.Create(*journalOut)
		if err != nil {
			fatalf("journal: %v", err)
		}
		ses.jw = jw
		ses.o.AddSink(jw)
	}
	if *serveObs != "" {
		srv := obshttp.New(ses.o)
		addr, err := srv.Start(*serveObs)
		if err != nil {
			fatalf("serve-obs: %v", err)
		}
		ses.srv = srv
		ses.o.AddSink(srv)
		fmt.Fprintf(os.Stderr, "mcsyn: ops plane on http://%s (/metrics /progress /trace /debug/pprof)\n", addr)
	}
	if *profileStages {
		ses.prof = prof.New(*profileTop)
		ses.o.SetStageHook(ses.prof)
	}

	if *serveAddr != "" {
		sv := serve.New(serve.Options{
			Shards:       *serveShards,
			Queue:        *serveQueue,
			CacheEntries: *serveCache,
			JobWorkers:   *repairWorkers,
			Obs:          ses.o, // nil falls back to a private registry
		})
		addr, err := sv.Start(*serveAddr)
		if err != nil {
			fatalf("serve: %v", err)
		}
		ses.synsrv = sv
		// Route pipeline events (repair rounds, run_start/run_end) to
		// per-job SSE feeds alongside the journal and ops-plane sinks.
		ses.o.AddSink(sv)
		fmt.Fprintf(os.Stderr, "mcsyn: synthesis service on http://%s (POST /synth, GET /job/{id}, GET /result/{digest}, /metrics)\n", addr)
		select {} // serve until a signal drains us through exit()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("%v", err)
		}
		ses.cpu = f
	}

	if *list {
		for _, e := range benchdata.Table1 {
			fmt.Printf("%-16s %d inputs, %d outputs (paper: %d added signals)\n",
				e.Name, e.Inputs, e.Outputs, e.PaperAdded)
		}
		return
	}

	if *benchjson != "" {
		rep, err := bench.RunTable1(*benchtime)
		if err != nil {
			fatalf("%v", err)
		}
		if err := rep.WriteFile(*benchjson); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s (%d benchmarks × %d stages, benchtime %s)\n",
			*benchjson, len(rep.Entries), len(rep.StageOrder), rep.Benchtime)
		return
	}

	switch *engineName {
	case "explicit", "symbolic", "auto":
	default:
		fatalf("unknown engine %q (want explicit, symbolic or auto)", *engineName)
	}

	opts := synth.Options{RS: *rs, Share: *share, Parallel: *parallel}
	opts.Repair.MaxModels = *maxModels
	opts.Repair.Workers = *repairWorkers
	opts.Repair.Portfolio = *portfolio

	if *table1 {
		failed := false
		if ses.o != nil || *engineName == "auto" {
			// Observed runs go spec by spec so spans and counter deltas
			// attribute cleanly to one benchmark each; auto runs do too,
			// so the engine resolves per spec.
			for _, e := range benchdata.Table1 {
				finish := ses.begin()
				o := opts
				journal.PublishRunStart(e.Name, e.Source, runConfig(*engineName, o))
				net := e.STG()
				o.Engine = resolveEngine(*engineName, net)
				rep, err := synth.FromSTG(net, o)
				journalRunEnd(e.Name, rep, err)
				finish(e.Name, func(r *obs.RunReport) { fillSynth(r, rep, err) })
				failed = printTable1Result(benchdata.Table1Result{Entry: e, Report: rep, Err: err}, *quiet) || failed
			}
		} else {
			opts.Engine = *engineName
			for _, r := range benchdata.RunTable1(opts, *parallel) {
				failed = printTable1Result(r, *quiet) || failed
			}
		}
		if failed {
			exit(1)
		}
		return
	}

	finish := ses.begin()
	var net *stg.STG
	var source string
	switch {
	case *benchName != "":
		e, ok := benchdata.Table1ByName(*benchName)
		if !ok {
			fatalf("unknown benchmark %q (use -list)", *benchName)
		}
		source = e.Source
		journal.PublishRunStart(e.Name, source, runConfig(*engineName, opts))
		net = e.STG()
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		source = string(data)
		net, err = stg.Parse(source)
		if err != nil {
			fatalf("%v", err)
		}
		// The spec's name is only known after parsing, so a file-spec
		// journal opens its run just after the parse stage event.
		journal.PublishRunStart(net.Name, source, runConfig(*engineName, opts))
	default:
		flag.Usage()
		exit(2)
	}

	if *useBaseline {
		g, err := stg.BuildSG(net)
		if err != nil {
			finish(net.Name, func(r *obs.RunReport) { r.Verdict = "error: " + err.Error() })
			fatalf("%v", err)
		}
		ssp := obs.Start("synth", obs.A("spec", net.Name))
		nl, err := baseline.Synthesize(g, netlist.Options{RS: *rs})
		ssp.End()
		if err != nil {
			finish(net.Name, func(r *obs.RunReport) { r.Verdict = "error: " + err.Error() })
			fatalf("baseline: %v", err)
		}
		res := verify.Check(nl, g)
		journal.PublishRunEnd(net.Name, nl.String(), 0, res.String(), res.OK())
		finish(net.Name, func(r *obs.RunReport) {
			r.Verdict = res.String()
			r.OK = res.OK()
			r.Literals = nl.Stats().Literals
			r.SpecStates = g.NumStates()
			r.FinalStates = g.NumStates()
			r.ComposedStates = res.States
		})
		if !*quiet {
			fmt.Printf("baseline netlist (%s):\n%s", nl.Stats(), nl)
		}
		fmt.Printf("%s: %s\n", net.Name, res)
		if !res.OK() {
			exit(1)
		}
		return
	}

	opts.Engine = resolveEngine(*engineName, net)
	rep, err := synth.FromSTG(net, opts)
	if err != nil && opts.Engine == "symbolic" && engine.IsStateLimit(err) {
		// The spec is past the explicit engine's capacity. Synthesis
		// needs the explicit graph, but the symbolic engine can still
		// answer the analysis questions — report those instead of dying.
		analysisOnly(net, finish, *quiet)
		return
	}
	journalRunEnd(net.Name, rep, err)
	finish(net.Name, func(r *obs.RunReport) { fillSynth(r, rep, err) })
	if err != nil {
		fatalf("%v", err)
	}
	if *quiet {
		fmt.Printf("%s: %s\n", net.Name, rep.Verify)
	} else {
		fmt.Print(rep.Summary())
	}
	if *dot {
		fmt.Print(rep.Final.DOT())
	}
	if *verilog {
		fmt.Print(rep.Netlist.Verilog(net.Name))
	}
	if *fanin > 0 || *inverters {
		res, err := tech.Map(rep.Netlist, rep.Final, tech.Library{
			MaxFanin:          *fanin,
			ExplicitInverters: *inverters,
		})
		if err != nil {
			fatalf("mapping: %v", err)
		}
		fmt.Printf("technology mapping:\n%s", res)
		if len(res.Obligations) > 0 {
			if err := tech.ValidateObligations(res, rep.Final, 10); err != nil {
				fmt.Printf("obligation validation: FAILED — %v\n", err)
			} else {
				fmt.Println("obligation validation: clean over 10 simulated delay assignments")
			}
		}
	}
	if !rep.OK() {
		exit(1)
	}
}

// resolveEngine maps -engine=auto to a concrete engine for one spec: a
// bounded probe exploration decides whether the state space is small
// enough to stay explicit. Explicit and symbolic pass through.
func resolveEngine(name string, net *stg.STG) string {
	if name != "auto" {
		return name
	}
	if n, exact := engine.EstimateStates(net, engine.DefaultAutoThreshold); exact && n <= uint64(engine.DefaultAutoThreshold) {
		return "explicit"
	}
	return "symbolic"
}

// analysisOnly is the -engine=symbolic degradation path for specs the
// explicit engine cannot explore: report the symbolic reachability
// count and the existence-only MC verdict, then exit by their status.
func analysisOnly(net *stg.STG, finish func(string, func(*obs.RunReport)), quiet bool) {
	a, err := (&engine.Symbolic{}).Analyze(net)
	if err != nil {
		finish(net.Name, func(r *obs.RunReport) { r.Verdict = "error: " + err.Error() })
		fatalf("symbolic analysis: %v", err)
	}
	ok := !a.Unsafe && len(a.MCUnresolved) == 0
	verdict := fmt.Sprintf("analysis-only (symbolic): %d states", a.States)
	switch {
	case a.Unsafe:
		verdict = "analysis-only (symbolic): net is not 1-safe"
	case len(a.MCUnresolved) > 0:
		verdict += fmt.Sprintf(", %d excitation regions without a monotonous cover", len(a.MCUnresolved))
	default:
		verdict += ", every excitation region has a monotonous cover"
	}
	journal.PublishRunEnd(net.Name, "", 0, verdict, ok)
	finish(net.Name, func(r *obs.RunReport) {
		r.Verdict = verdict
		r.OK = ok
	})
	if !quiet {
		fmt.Printf("%s: state space exceeds the explicit engine; symbolic analysis only\n", net.Name)
		if len(a.MCUnresolved) > 0 {
			fmt.Printf("  unresolved regions: %v\n", a.MCUnresolved)
		}
	}
	fmt.Printf("%s: %s\n", net.Name, verdict)
	if !ok {
		exit(1)
	}
}

// printTable1Result renders one Table-1 outcome and reports failure.
func printTable1Result(r benchdata.Table1Result, quiet bool) (failed bool) {
	if r.Err != nil {
		fmt.Printf("%s: ERROR: %v\n", r.Entry.Name, r.Err)
		return true
	}
	if quiet {
		fmt.Printf("%-16s added=%d %s\n", r.Entry.Name, len(r.Report.AddedSignals), r.Report.Verify)
	} else {
		fmt.Print(r.Report.Summary())
	}
	return !r.Report.OK()
}

// exit flushes every pending output — profiles, metrics, trace, run
// reports — before terminating, since os.Exit skips deferred calls.
func exit(code int) {
	ses.flush()
	os.Exit(code)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mcsyn: "+format+"\n", args...)
	exit(1)
}
