// Command mcsyn synthesizes a speed-independent circuit from a Signal
// Transition Graph using the Monotonous Cover method: it builds the
// state graph, checks the behavioural preconditions, inserts state
// signals via SAT-based state assignment until the MC requirement holds,
// emits the standard C- or RS-implementation, and verifies the result
// hazard-free against the (transformed) specification.
//
// Usage:
//
//	mcsyn [flags] spec.g        synthesize an STG file
//	mcsyn [flags] -bench name   synthesize a built-in Table-1 benchmark
//	mcsyn [flags] -table1       synthesize all nine Table-1 benchmarks
//	mcsyn -list                 list the built-in benchmarks
//
// Flags:
//
//	-rs         emit the standard RS-implementation (default: C-elements)
//	-share      enable Section-VI generalized-MC gate sharing
//	-baseline   use the correct-cover baseline instead of MC synthesis
//	-dot        print the final state graph in Graphviz syntax
//	-quiet      print only the verdict line
//	-parallel N bound the analysis/benchmark worker pools (0 = GOMAXPROCS,
//	            1 = sequential)
//	-cpuprofile write a CPU profile to the given file
//	-benchjson  benchmark the Table-1 pipeline stages (parse, reach,
//	            analyze, synth, verify) and write a JSON report
//	-benchtime  per-stage measuring time for -benchjson
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/benchdata"
	"repro/internal/netlist"
	"repro/internal/stg"
	"repro/internal/synth"
	"repro/internal/tech"
	"repro/internal/verify"
)

func main() {
	rs := flag.Bool("rs", false, "emit the standard RS-implementation")
	share := flag.Bool("share", false, "enable generalized-MC gate sharing (Section VI)")
	useBaseline := flag.Bool("baseline", false, "use the correct-cover baseline (no MC repair)")
	benchName := flag.String("bench", "", "synthesize a built-in Table-1 benchmark")
	table1 := flag.Bool("table1", false, "synthesize all nine Table-1 benchmarks")
	list := flag.Bool("list", false, "list built-in benchmarks")
	dot := flag.Bool("dot", false, "print the final state graph in Graphviz syntax")
	quiet := flag.Bool("quiet", false, "print only the verdict line")
	fanin := flag.Int("fanin", 0, "map to a library with this AND/OR fan-in bound (0 = none)")
	inverters := flag.Bool("inverters", false, "map pin bubbles to explicit inverter cells")
	verilog := flag.Bool("verilog", false, "print the implementation as structural Verilog")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	benchjson := flag.String("benchjson", "", "benchmark the Table-1 pipeline stages and write the JSON report to this file")
	benchtime := flag.Duration("benchtime", 0, "per-stage measuring time for -benchjson (0 = testing default of 1s)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("%v", err)
		}
		defer pprof.StopCPUProfile()
	}

	if *list {
		for _, e := range benchdata.Table1 {
			fmt.Printf("%-16s %d inputs, %d outputs (paper: %d added signals)\n",
				e.Name, e.Inputs, e.Outputs, e.PaperAdded)
		}
		return
	}

	if *benchjson != "" {
		rep, err := bench.RunTable1(*benchtime)
		if err != nil {
			fatalf("%v", err)
		}
		if err := rep.WriteFile(*benchjson); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s (%d benchmarks × %d stages, benchtime %s)\n",
			*benchjson, len(rep.Entries), len(rep.StageOrder), rep.Benchtime)
		return
	}

	if *table1 {
		results := benchdata.RunTable1(synth.Options{RS: *rs, Share: *share, Parallel: *parallel}, *parallel)
		failed := false
		for _, r := range results {
			if r.Err != nil {
				failed = true
				fmt.Printf("%s: ERROR: %v\n", r.Entry.Name, r.Err)
				continue
			}
			if *quiet {
				fmt.Printf("%-16s added=%d %s\n", r.Entry.Name, len(r.Report.AddedSignals), r.Report.Verify)
			} else {
				fmt.Print(r.Report.Summary())
			}
			if !r.Report.OK() {
				failed = true
			}
		}
		if failed {
			exit(1)
		}
		return
	}

	var net *stg.STG
	switch {
	case *benchName != "":
		e, ok := benchdata.Table1ByName(*benchName)
		if !ok {
			fatalf("unknown benchmark %q (use -list)", *benchName)
		}
		net = e.STG()
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		net, err = stg.Parse(string(data))
		if err != nil {
			fatalf("%v", err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *useBaseline {
		g, err := stg.BuildSG(net)
		if err != nil {
			fatalf("%v", err)
		}
		nl, err := baseline.Synthesize(g, netlist.Options{RS: *rs})
		if err != nil {
			fatalf("baseline: %v", err)
		}
		res := verify.Check(nl, g)
		if !*quiet {
			fmt.Printf("baseline netlist (%s):\n%s", nl.Stats(), nl)
		}
		fmt.Printf("%s: %s\n", net.Name, res)
		if !res.OK() {
			exit(1)
		}
		return
	}

	rep, err := synth.FromSTG(net, synth.Options{RS: *rs, Share: *share, Parallel: *parallel})
	if err != nil {
		fatalf("%v", err)
	}
	if *quiet {
		fmt.Printf("%s: %s\n", net.Name, rep.Verify)
	} else {
		fmt.Print(rep.Summary())
	}
	if *dot {
		fmt.Print(rep.Final.DOT())
	}
	if *verilog {
		fmt.Print(rep.Netlist.Verilog(net.Name))
	}
	if *fanin > 0 || *inverters {
		res, err := tech.Map(rep.Netlist, rep.Final, tech.Library{
			MaxFanin:          *fanin,
			ExplicitInverters: *inverters,
		})
		if err != nil {
			fatalf("mapping: %v", err)
		}
		fmt.Printf("technology mapping:\n%s", res)
		if len(res.Obligations) > 0 {
			if err := tech.ValidateObligations(res, rep.Final, 10); err != nil {
				fmt.Printf("obligation validation: FAILED — %v\n", err)
			} else {
				fmt.Println("obligation validation: clean over 10 simulated delay assignments")
			}
		}
	}
	if !rep.OK() {
		exit(1)
	}
}

// exit stops an active CPU profile (a no-op otherwise) before exiting,
// since os.Exit skips deferred calls.
func exit(code int) {
	pprof.StopCPUProfile()
	os.Exit(code)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mcsyn: "+format+"\n", args...)
	exit(1)
}
