// Command experiments regenerates every figure and table of the paper's
// evaluation in one run and prints the measured results next to the
// published ones — the data recorded in EXPERIMENTS.md.
package main

import (
	"fmt"
	"os"

	"repro/internal/paper"
)

func main() {
	ok := true

	fmt.Println("== Figure 1: state graph example ==")
	f1 := paper.RunFig1()
	fmt.Printf("states: %d (paper: 14)\n", f1.States)
	fmt.Printf("input conflicts: %d, internal conflicts: %d (paper: input choice only)\n",
		f1.InputConflicts, f1.InternalConflicts)
	fmt.Printf("output distributive: %v (paper: yes), persistent: %v (paper: no)\n",
		f1.OutputDistrib, f1.Persistent)
	fmt.Printf("ER(+d) region sizes: %v; u_min(+d1) = %s, trigger %s (Lemma 2)\n",
		f1.ERdPlusSizes, f1.UMinPlusD, f1.TriggerOfPlusD)
	fmt.Printf("MC violations: %d (paper: ER(+d) needs two cubes → not MC)\n\n", f1.MCViolations)

	fmt.Println("== Equations (1): Beerel–Meng-style baseline on Figure 1 ==")
	e1, err := paper.RunEq1Baseline()
	if err != nil {
		fail("eq1: %v", err)
	}
	fmt.Printf("Sd = %s (%d cubes; paper needs 2)\n", e1.Sd, e1.SdCubes)
	fmt.Printf("Rd = %s, Sc = %s, Rc = %s\n", e1.Rd, e1.Sc, e1.Rc)
	fmt.Printf("hazardous: %v (paper: AND gates not acknowledged); witnesses: %v\n\n",
		e1.Hazardous, e1.HazardGates)
	ok = ok && e1.Hazardous

	fmt.Println("== Figure 3 / Equations (2): MC repair of Figure 1 ==")
	f3, err := paper.RunFig3()
	if err != nil {
		fail("fig3: %v", err)
	}
	fmt.Printf("added state signals: %v (paper: 1)\n", f3.Added)
	fmt.Printf("transformed states: %d (Figure 3: 17)\n", f3.FinalStates)
	fmt.Printf("d degenerates to a wire: %v (paper's particular insertion: yes)\n", f3.DWire)
	fmt.Printf("implementation (%s):\n%s", f3.Stats, f3.Netlist)
	fmt.Printf("speed-independent: %v\n\n", f3.Verified)
	ok = ok && f3.Verified

	fmt.Println("== Figure 4 / Example 2: persistent SG violating MC ==")
	f4, err := paper.RunFig4()
	if err != nil {
		fail("fig4: %v", err)
	}
	fmt.Printf("persistent: %v (paper: yes), correct covers: %v (paper: yes)\n",
		f4.Persistent, f4.CorrectCovers)
	fmt.Printf("violation: %v, paper witness 10*01 found: %v\n", f4.ViolationKind, f4.WitnessHit)
	fmt.Printf("baseline (t = c'd, b = a + t) hazardous: %v, gate: %s\n",
		f4.BaselineHazard, f4.HazardGate)
	fmt.Printf("MC repair: %d signal(s) (paper: 1), speed-independent: %v\n",
		f4.RepairAdded, f4.RepairVerified)
	fmt.Printf("complex-gate reference speed-independent: %v\n\n", f4.ComplexVerified)
	ok = ok && f4.BaselineHazard && f4.RepairVerified

	fmt.Println("== Table 1: MC-reduction on the nine benchmarks ==")
	rows, err := paper.RunTable1()
	if err != nil {
		fail("table1: %v", err)
	}
	fmt.Print(paper.FormatTable1(rows))
	for _, r := range rows {
		ok = ok && r.Verified && r.Added == r.PaperAdded
	}

	fmt.Println("\n== Beyond the paper: supporting experiments ==")
	beyond, err := paper.RunBeyond()
	if err != nil {
		fail("beyond: %v", err)
	}
	fmt.Println(beyond)
	ok = ok && beyond.SharedAnds < beyond.PrivateAnds &&
		beyond.DecomposeHazards > 0 && !beyond.InvertersUntimedSI &&
		beyond.InvertersValidated && beyond.CSCSignals < beyond.MCSignals

	if !ok {
		fail("some experiments deviated from the paper")
	}
	fmt.Println("\nall experiments reproduce the paper's results")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
